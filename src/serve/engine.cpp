#include "serve/engine.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "explain/cfg_explainer.hpp"
#include "graph/ops.hpp"
#include "nn/loss.hpp"
#include "nn/sparse.hpp"
#include "nn/workspace.hpp"
#include "obs/metrics.hpp"

namespace cfgx::serve {
namespace {

obs::Histogram& latency_histogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("serve.request_latency_seconds");
  return h;
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("serve.queue_depth");
  return g;
}

obs::Counter& status_counter(ResponseStatus status) {
  static obs::Counter& ok =
      obs::MetricsRegistry::global().counter("serve.requests_served");
  static obs::Counter& full =
      obs::MetricsRegistry::global().counter("serve.rejected_queue_full");
  static obs::Counter& deadline =
      obs::MetricsRegistry::global().counter("serve.deadline_exceeded");
  static obs::Counter& failed =
      obs::MetricsRegistry::global().counter("serve.explain_errors");
  static obs::Counter& stopped =
      obs::MetricsRegistry::global().counter("serve.stopped");
  switch (status) {
    case ResponseStatus::Ok: return ok;
    case ResponseStatus::QueueFull: return full;
    case ResponseStatus::DeadlineExceeded: return deadline;
    case ResponseStatus::ExplainError: return failed;
    case ResponseStatus::EngineStopped: break;
  }
  return stopped;
}

ExplanationResponse status_response(ResponseStatus status) {
  ExplanationResponse response;
  response.status = status;
  return response;
}

}  // namespace

const char* to_string(ResponseStatus status) noexcept {
  switch (status) {
    case ResponseStatus::Ok: return "ok";
    case ResponseStatus::QueueFull: return "queue_full";
    case ResponseStatus::DeadlineExceeded: return "deadline_exceeded";
    case ResponseStatus::ExplainError: return "explain_error";
    case ResponseStatus::EngineStopped: return "engine_stopped";
  }
  return "unknown";
}

ExplanationEngine::ExplanationEngine(const GnnClassifier& gnn,
                                     ExplainerFactory factory,
                                     ServeConfig config)
    : gnn_(&gnn),
      factory_(std::move(factory)),
      config_(config),
      explain_pool_(config.explain_workers) {
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("ExplanationEngine: queue_capacity must be > 0");
  }
  if (config_.max_batch == 0) {
    throw std::invalid_argument("ExplanationEngine: max_batch must be > 0");
  }
  if (config_.precision != Precision::Fp64) {
    owned_gnn_ = std::make_unique<GnnClassifier>(gnn.clone());
    owned_gnn_->set_precision(config_.precision);
    gnn_ = owned_gnn_.get();
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

ExplanationEngine::~ExplanationEngine() { stop(); }

std::future<ExplanationResponse> ExplanationEngine::submit(
    Acfg graph, Clock::time_point deadline) {
  if (graph.num_nodes() == 0) {
    throw std::invalid_argument("ExplanationEngine::submit: empty graph");
  }
  if (graph.feature_count() != gnn_->config().feature_dim) {
    throw std::invalid_argument(
        "ExplanationEngine::submit: feature_count does not match the GNN");
  }

  Request request;
  request.graph = std::move(graph);
  request.deadline = deadline;
  request.enqueued = Clock::now();
  std::future<ExplanationResponse> future = request.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      finish(request, status_response(ResponseStatus::EngineStopped));
      return future;
    }
    if (queue_.size() >= config_.queue_capacity) {
      // Admission control: reject NOW rather than buffer without bound.
      finish(request, status_response(ResponseStatus::QueueFull));
      return future;
    }
    queue_.push_back(std::move(request));
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

std::size_t ExplanationEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ExplanationEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Separate mutex so concurrent stop() calls serialize on the join
  // without holding the queue lock the dispatcher needs to drain.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

void ExplanationEngine::finish(Request& request, ExplanationResponse response) {
  status_counter(response.status).add();
  latency_histogram().record(
      std::chrono::duration<double>(Clock::now() - request.enqueued).count());
  request.promise.set_value(std::move(response));
}

void ExplanationEngine::dispatcher_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) break;
      const std::size_t take = std::min(config_.max_batch, queue_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }
    serve_batch(batch);
  }

  // Drain: every request still queued at stop() gets a typed response.
  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(queue_);
    queue_depth_gauge().set(0.0);
  }
  for (Request& request : leftover) {
    finish(request, status_response(ResponseStatus::EngineStopped));
  }
}

void ExplanationEngine::serve_batch(std::vector<Request>& batch) {
  static obs::Histogram& batch_size_h =
      obs::MetricsRegistry::global().histogram("serve.batch_size");
  static obs::Histogram& prepare_h =
      obs::MetricsRegistry::global().histogram("serve.batch_prepare_seconds");
  static obs::Histogram& execute_h =
      obs::MetricsRegistry::global().histogram("serve.batch_execute_seconds");
  batch_size_h.record(static_cast<double>(batch.size()));

  // Stage boundary 1 (dequeue): an already-expired request gets no work.
  std::vector<std::size_t> live;
  {
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].deadline < now) {
        finish(batch[i], status_response(ResponseStatus::DeadlineExceeded));
      } else {
        live.push_back(i);
      }
    }
  }
  if (live.empty()) return;

  // --- prepare: normalize + freeze each graph's CSR, lease scratch ---
  Workspace& workspace = Workspace::local();
  std::vector<MaskedNormalizedAdjacency> frozen;
  std::vector<std::size_t> active_counts;
  std::vector<const CsrMatrix*> blocks;
  std::size_t total_nodes = 0;
  Workspace::Lease features = [&] {
    obs::ScopedDurationTimer timer(prepare_h);
    frozen.reserve(live.size());
    active_counts.reserve(live.size());
    blocks.reserve(live.size());
    for (std::size_t i : live) {
      const Acfg& graph = batch[i].graph;
      frozen.emplace_back(graph.dense_adjacency(), graph.features());
      std::size_t active = 0;
      for (double v : frozen.back().inv_sqrt_degree()) {
        if (v != 0.0) ++active;
      }
      active_counts.push_back(active);
      blocks.push_back(&frozen.back().a_hat());
      total_nodes += graph.num_nodes();
    }
    Workspace::Lease stacked =
        workspace.acquire(total_nodes, gnn_->config().feature_dim);
    std::size_t row_base = 0;
    for (std::size_t i : live) {
      const Matrix& graph_features = batch[i].graph.features();
      for (std::size_t r = 0; r < graph_features.rows(); ++r) {
        for (std::size_t c = 0; c < graph_features.cols(); ++c) {
          stacked.get()(row_base + r, c) = graph_features(r, c);
        }
      }
      row_base += graph_features.rows();
    }
    return stacked;
  }();

  const BatchedCsr batched = BatchedCsr::concat(blocks);
  std::vector<double> inv_sqrt;
  inv_sqrt.reserve(total_nodes);
  for (const MaskedNormalizedAdjacency& f : frozen) {
    inv_sqrt.insert(inv_sqrt.end(), f.inv_sqrt_degree().begin(),
                    f.inv_sqrt_degree().end());
  }

  // --- execute: ONE forward pass for the whole batch ---
  std::vector<Prediction> predictions(live.size());
  {
    obs::ScopedDurationTimer timer(execute_h);
    Workspace::Lease embeddings =
        workspace.acquire(total_nodes, gnn_->config().embedding_dim());
    gnn_->embed_into(batched.matrix(), inv_sqrt, features.get(),
                     embeddings.get());
    for (std::size_t k = 0; k < live.size(); ++k) {
      const BatchedCsr::Range& range = batched.range(k);
      Workspace::Lease slice =
          workspace.acquire(range.size(), gnn_->config().embedding_dim());
      for (std::size_t r = 0; r < range.size(); ++r) {
        for (std::size_t c = 0; c < gnn_->config().embedding_dim(); ++c) {
          slice.get()(r, c) = embeddings.get()(range.begin + r, c);
        }
      }
      predictions[k].probabilities =
          softmax_rows(gnn_->class_logits(slice.get(), active_counts[k]));
      predictions[k].predicted_class =
          argmax_rows(predictions[k].probabilities)[0];
    }
  }

  // Stage boundary 2 (pre-explain): classification is done, but the
  // expensive Algorithm-2 pass is not started for expired requests.
  std::vector<std::size_t> to_explain;  // indices into `live`
  {
    const Clock::time_point now = Clock::now();
    for (std::size_t k = 0; k < live.size(); ++k) {
      if (batch[live[k]].deadline < now) {
        finish(batch[live[k]],
               status_response(ResponseStatus::DeadlineExceeded));
      } else {
        to_explain.push_back(k);
      }
    }
  }
  if (to_explain.empty()) return;

  std::vector<const Acfg*> graphs;
  graphs.reserve(to_explain.size());
  for (std::size_t k : to_explain) graphs.push_back(&batch[live[k]].graph);
  const std::vector<ExplainOutcome> outcomes =
      explain_batch_outcomes(graphs, explain_pool_, factory_);

  // Stage boundary 3 (completion): a response that misses its deadline is
  // DeadlineExceeded even though the work finished — usefulness, not
  // effort, is the contract.
  const Clock::time_point now = Clock::now();
  for (std::size_t j = 0; j < to_explain.size(); ++j) {
    const std::size_t k = to_explain[j];
    Request& request = batch[live[k]];
    ExplanationResponse response;
    if (request.deadline < now) {
      response.status = ResponseStatus::DeadlineExceeded;
    } else if (outcomes[j].ok()) {
      response.status = ResponseStatus::Ok;
      response.prediction = predictions[k];
      response.ranking = outcomes[j].ranking;
    } else {
      response.status = ResponseStatus::ExplainError;
      response.prediction = predictions[k];
      response.error = outcomes[j].error_message();
    }
    finish(request, std::move(response));
  }
}

ExplainerFactory make_cfg_explainer_factory(const GnnClassifier& gnn,
                                            ExplainerModel theta) {
  // std::function requires a copyable callable, so the move-only model
  // lives behind a shared_ptr; every factory call deep-copies it.
  auto shared = std::make_shared<ExplainerModel>(std::move(theta));
  return [&gnn, shared] {
    auto explainer = std::make_unique<CfgExplainer>(gnn);
    explainer->set_model(shared->clone());
    return explainer;
  };
}

}  // namespace cfgx::serve

