#include "serve/engine.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "explain/cfg_explainer.hpp"
#include "explain/reduced.hpp"
#include "graph/ops.hpp"
#include "nn/loss.hpp"
#include "nn/simd.hpp"
#include "nn/sparse.hpp"
#include "nn/workspace.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/admin.hpp"
#include "util/logging.hpp"

namespace cfgx::serve {
namespace {

obs::Histogram& latency_histogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("serve.request_latency_seconds");
  return h;
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("serve.queue_depth");
  return g;
}

obs::Gauge& inflight_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge("serve.inflight");
  return g;
}

obs::Gauge& uptime_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("engine.uptime_seconds");
  return g;
}

obs::Counter& status_counter(ResponseStatus status) {
  static obs::Counter& ok =
      obs::MetricsRegistry::global().counter("serve.requests_served");
  static obs::Counter& full =
      obs::MetricsRegistry::global().counter("serve.rejected_queue_full");
  static obs::Counter& deadline =
      obs::MetricsRegistry::global().counter("serve.deadline_exceeded");
  static obs::Counter& failed =
      obs::MetricsRegistry::global().counter("serve.explain_errors");
  static obs::Counter& stopped =
      obs::MetricsRegistry::global().counter("serve.stopped");
  switch (status) {
    case ResponseStatus::Ok: return ok;
    case ResponseStatus::QueueFull: return full;
    case ResponseStatus::DeadlineExceeded: return deadline;
    case ResponseStatus::ExplainError: return failed;
    case ResponseStatus::EngineStopped: break;
  }
  return stopped;
}

ExplanationResponse status_response(ResponseStatus status) {
  ExplanationResponse response;
  response.status = status;
  return response;
}

}  // namespace

const char* to_string(ResponseStatus status) noexcept {
  switch (status) {
    case ResponseStatus::Ok: return "ok";
    case ResponseStatus::QueueFull: return "queue_full";
    case ResponseStatus::DeadlineExceeded: return "deadline_exceeded";
    case ResponseStatus::ExplainError: return "explain_error";
    case ResponseStatus::EngineStopped: return "engine_stopped";
  }
  return "unknown";
}

namespace {

// Engine SLO alerts go through the real logger (obs itself cannot link
// util; see SloConfig::alert_sink).
obs::SloConfig with_log_sink(obs::SloConfig slo) {
  if (!slo.alert_sink) {
    slo.alert_sink = [](const std::string& message) {
      CFGX_LOG(Warn) << message;
    };
  }
  return slo;
}

}  // namespace

ExplanationEngine::ExplanationEngine(const GnnClassifier& gnn,
                                     ExplainerFactory factory,
                                     ServeConfig config)
    : gnn_(&gnn),
      factory_(std::move(factory)),
      config_(config),
      explain_pool_(config.explain_workers),
      slo_(with_log_sink(config.slo)) {
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("ExplanationEngine: queue_capacity must be > 0");
  }
  if (config_.max_batch == 0) {
    throw std::invalid_argument("ExplanationEngine: max_batch must be > 0");
  }
  if (config_.precision != Precision::Fp64) {
    owned_gnn_ = std::make_unique<GnnClassifier>(gnn.clone());
    owned_gnn_->set_precision(config_.precision);
    gnn_ = owned_gnn_.get();
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  if (config_.admin_port >= 0) {
    try {
      admin_ = std::make_unique<AdminServer>(
          config_.admin_port,
          [] {
            return obs::render_prometheus(
                obs::MetricsRegistry::global().snapshot());
          },
          [this] { return statusz_json(); });
    } catch (...) {
      // A failed bind must not leak a running dispatcher: ~thread on a
      // joinable thread would terminate the process.
      stop();
      throw;
    }
  }
  update_uptime_gauge();
}

ExplanationEngine::~ExplanationEngine() { stop(); }

std::future<ExplanationResponse> ExplanationEngine::submit(
    Acfg graph, Clock::time_point deadline) {
  if (graph.num_nodes() == 0) {
    throw std::invalid_argument("ExplanationEngine::submit: empty graph");
  }
  if (graph.feature_count() != gnn_->config().feature_dim) {
    throw std::invalid_argument(
        "ExplanationEngine::submit: feature_count does not match the GNN");
  }

  obs::TraceSpan span("serve.submit", "serve");
  Request request;
  request.graph = std::move(graph);
  request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.deadline = deadline;
  request.enqueued = Clock::now();
  std::future<ExplanationResponse> future = request.promise.get_future();

  // The flow starts inside the submit span on the caller's thread; every
  // later hop (dispatcher batch, completion) emits a step/end with the
  // same id, which chrome://tracing renders as one arrow chain.
  obs::trace_flow(request.id, obs::FlowPhase::Start, "serve.request", "serve");
  inflight_gauge().add(1.0);  // finish() decrements, including rejections
  update_uptime_gauge();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      finish(request, status_response(ResponseStatus::EngineStopped));
      return future;
    }
    if (queue_.size() >= config_.queue_capacity) {
      // Admission control: reject NOW rather than buffer without bound.
      finish(request, status_response(ResponseStatus::QueueFull));
      return future;
    }
    queue_.push_back(std::move(request));
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

std::size_t ExplanationEngine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ExplanationEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Separate mutex so concurrent stop() calls serialize on the join
  // without holding the queue lock the dispatcher needs to drain.
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
  // The endpoint outlives the dispatcher so a scrape during drain still
  // answers; it stops before this returns so no handler can observe a
  // partially destroyed engine afterwards.
  if (admin_) admin_->stop();
}

double ExplanationEngine::uptime_seconds() const {
  return std::chrono::duration<double>(Clock::now() - started_).count();
}

void ExplanationEngine::update_uptime_gauge() const {
  uptime_gauge().set(uptime_seconds());
}

std::uint16_t ExplanationEngine::admin_port() const noexcept {
  return admin_ ? admin_->port() : 0;
}

std::vector<SlowRequestExemplar> ExplanationEngine::slow_exemplars() const {
  std::lock_guard<std::mutex> lock(telemetry_mutex_);
  return {slow_exemplars_.begin(), slow_exemplars_.end()};
}

std::string ExplanationEngine::statusz_json() const {
  update_uptime_gauge();
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::global().snapshot();
  const auto counter = [&](const char* name) -> std::uint64_t {
    for (const auto& [n, v] : snapshot.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  const obs::HistogramStats* batch_stats = nullptr;
  for (const obs::HistogramStats& h : snapshot.histograms) {
    if (h.name == "serve.batch_size") batch_stats = &h;
  }

  double inflight = 0.0;
  for (const auto& [n, v] : snapshot.gauges) {
    if (n == "serve.inflight") inflight = v;
  }

  obs::JsonWriter json;
  json.begin_object();
  json.field("schema", "cfgx.statusz.v1");
  json.field("uptime_seconds", uptime_seconds());
  json.field("queue_depth", static_cast<std::uint64_t>(queue_depth()));
  json.field("inflight", inflight);
  json.key("requests").begin_object();
  json.field("served_ok", counter("serve.requests_served"));
  json.field("queue_full", counter("serve.rejected_queue_full"));
  json.field("deadline_exceeded", counter("serve.deadline_exceeded"));
  json.field("explain_errors", counter("serve.explain_errors"));
  json.field("engine_stopped", counter("serve.stopped"));
  json.end_object();
  json.key("batch").begin_object();
  if (batch_stats != nullptr) {
    json.field("count", batch_stats->count);
    json.field("mean_size", batch_stats->mean);
    json.field("p95_size", batch_stats->p95);
    json.field("max_size", batch_stats->max);
  } else {
    json.field("count", std::uint64_t{0});
  }
  json.end_object();
  json.field("isa", simd::isa_name(simd::dispatch()));
  json.field("precision", precision_name(config_.precision));
  {
    std::lock_guard<std::mutex> lock(telemetry_mutex_);
    json.field("last_error", last_error_);
    json.field("slow_exemplars", static_cast<std::uint64_t>(
                                     slow_exemplars_.size()));
  }
  json.key("slo");
  slo_.status().write_json(json);
  json.end_object();
  return json.str();
}

void ExplanationEngine::finish(Request& request, ExplanationResponse response) {
  obs::TraceSpan span("serve.finish", "serve");
  response.request_id = request.id;
  status_counter(response.status).add();
  const Clock::time_point now = Clock::now();
  const double latency =
      std::chrono::duration<double>(now - request.enqueued).count();
  latency_histogram().record(latency);
  inflight_gauge().add(-1.0);
  update_uptime_gauge();
  slo_.record(response.status == ResponseStatus::Ok, latency);

  if (response.status == ResponseStatus::ExplainError) {
    std::lock_guard<std::mutex> lock(telemetry_mutex_);
    last_error_ = response.error;
  }

  if (config_.slow_request_threshold_seconds > 0.0 &&
      latency > config_.slow_request_threshold_seconds &&
      config_.slow_exemplar_capacity > 0) {
    SlowRequestExemplar exemplar;
    exemplar.request_id = request.id;
    exemplar.status = response.status;
    exemplar.total_seconds = latency;
    exemplar.queue_seconds =
        request.dequeued >= request.enqueued
            ? std::chrono::duration<double>(request.dequeued - request.enqueued)
                  .count()
            : latency;  // never dequeued (rejected/stopped at submit)
    if (response.prediction.probabilities.rows() > 0) {
      exemplar.predicted_class = response.prediction.predicted_class;
      exemplar.confidence = response.prediction.confidence();
    }
    const std::size_t k =
        std::min(config_.slow_exemplar_top_k, response.ranking.order.size());
    exemplar.top_nodes.assign(response.ranking.order.begin(),
                              response.ranking.order.begin() +
                                  static_cast<std::ptrdiff_t>(k));
    std::lock_guard<std::mutex> lock(telemetry_mutex_);
    slow_exemplars_.push_back(std::move(exemplar));
    while (slow_exemplars_.size() > config_.slow_exemplar_capacity) {
      slow_exemplars_.pop_front();
    }
  }

  obs::trace_flow(request.id, obs::FlowPhase::End, "serve.request", "serve");
  request.promise.set_value(std::move(response));
}

void ExplanationEngine::dispatcher_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) break;
      const std::size_t take = std::min(config_.max_batch, queue_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }
    serve_batch(batch);
  }

  // Drain: every request still queued at stop() gets a typed response.
  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(queue_);
    queue_depth_gauge().set(0.0);
  }
  for (Request& request : leftover) {
    finish(request, status_response(ResponseStatus::EngineStopped));
  }
}

void ExplanationEngine::serve_batch(std::vector<Request>& batch) {
  static obs::Histogram& batch_size_h =
      obs::MetricsRegistry::global().histogram("serve.batch_size");
  static obs::Histogram& prepare_h =
      obs::MetricsRegistry::global().histogram("serve.batch_prepare_seconds");
  static obs::Histogram& execute_h =
      obs::MetricsRegistry::global().histogram("serve.batch_execute_seconds");
  batch_size_h.record(static_cast<double>(batch.size()));
  update_uptime_gauge();

  // The dispatcher-side hop of every request's flow: a step inside the
  // batch span links the submit-thread arrow to this thread's slice.
  obs::TraceSpan batch_span("serve.batch", "serve");
  for (const Request& request : batch) {
    obs::trace_flow(request.id, obs::FlowPhase::Step, "serve.request",
                    "serve");
  }

  // Stage boundary 1 (dequeue): an already-expired request gets no work.
  std::vector<std::size_t> live;
  {
    const Clock::time_point now = Clock::now();
    for (Request& request : batch) request.dequeued = now;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].deadline < now) {
        finish(batch[i], status_response(ResponseStatus::DeadlineExceeded));
      } else {
        live.push_back(i);
      }
    }
  }
  if (live.empty()) return;

  // --- prepare: (optionally coarsen,) normalize + freeze each graph's
  // CSR, lease scratch. In reduce-then-explain mode everything downstream
  // (forward pass, explainers) sees the coarse graphs; `reductions` keeps
  // the projections for the final ranking expansion.
  Workspace& workspace = Workspace::local();
  std::vector<ReducedGraph> reductions;  // parallel to `live` when reducing
  std::vector<MaskedNormalizedAdjacency> frozen;
  std::vector<std::size_t> active_counts;
  std::vector<const CsrMatrix*> blocks;
  std::size_t total_nodes = 0;
  const auto graph_for = [&](std::size_t k) -> const Acfg& {
    return config_.reduction ? reductions[k].graph : batch[live[k]].graph;
  };
  Workspace::Lease features = [&] {
    obs::ScopedDurationTimer timer(prepare_h);
    if (config_.reduction) {
      reductions.reserve(live.size());
      for (std::size_t i : live) {
        reductions.push_back(reduce_graph(batch[i].graph, *config_.reduction));
      }
    }
    frozen.reserve(live.size());
    active_counts.reserve(live.size());
    blocks.reserve(live.size());
    for (std::size_t k = 0; k < live.size(); ++k) {
      const Acfg& graph = graph_for(k);
      // Edge-list construction — bit-identical to the dense path (ops.hpp)
      // without the O(N^2) densification.
      frozen.emplace_back(graph);
      std::size_t active = 0;
      for (double v : frozen.back().inv_sqrt_degree()) {
        if (v != 0.0) ++active;
      }
      active_counts.push_back(active);
      blocks.push_back(&frozen.back().a_hat());
      total_nodes += graph.num_nodes();
    }
    Workspace::Lease stacked =
        workspace.acquire(total_nodes, gnn_->config().feature_dim);
    std::size_t row_base = 0;
    for (std::size_t k = 0; k < live.size(); ++k) {
      const Matrix& graph_features = graph_for(k).features();
      for (std::size_t r = 0; r < graph_features.rows(); ++r) {
        for (std::size_t c = 0; c < graph_features.cols(); ++c) {
          stacked.get()(row_base + r, c) = graph_features(r, c);
        }
      }
      row_base += graph_features.rows();
    }
    return stacked;
  }();

  const BatchedCsr batched = BatchedCsr::concat(blocks);
  std::vector<double> inv_sqrt;
  inv_sqrt.reserve(total_nodes);
  for (const MaskedNormalizedAdjacency& f : frozen) {
    inv_sqrt.insert(inv_sqrt.end(), f.inv_sqrt_degree().begin(),
                    f.inv_sqrt_degree().end());
  }

  // --- execute: ONE forward pass for the whole batch ---
  std::vector<Prediction> predictions(live.size());
  {
    obs::ScopedDurationTimer timer(execute_h);
    Workspace::Lease embeddings =
        workspace.acquire(total_nodes, gnn_->config().embedding_dim());
    gnn_->embed_into(batched.matrix(), inv_sqrt, features.get(),
                     embeddings.get());
    for (std::size_t k = 0; k < live.size(); ++k) {
      const BatchedCsr::Range& range = batched.range(k);
      Workspace::Lease slice =
          workspace.acquire(range.size(), gnn_->config().embedding_dim());
      for (std::size_t r = 0; r < range.size(); ++r) {
        for (std::size_t c = 0; c < gnn_->config().embedding_dim(); ++c) {
          slice.get()(r, c) = embeddings.get()(range.begin + r, c);
        }
      }
      predictions[k].probabilities =
          softmax_rows(gnn_->class_logits(slice.get(), active_counts[k]));
      predictions[k].predicted_class =
          argmax_rows(predictions[k].probabilities)[0];
    }
  }

  // Stage boundary 2 (pre-explain): classification is done, but the
  // expensive Algorithm-2 pass is not started for expired requests.
  std::vector<std::size_t> to_explain;  // indices into `live`
  {
    const Clock::time_point now = Clock::now();
    for (std::size_t k = 0; k < live.size(); ++k) {
      if (batch[live[k]].deadline < now) {
        finish(batch[live[k]],
               status_response(ResponseStatus::DeadlineExceeded));
      } else {
        to_explain.push_back(k);
      }
    }
  }
  if (to_explain.empty()) return;

  std::vector<const Acfg*> graphs;
  graphs.reserve(to_explain.size());
  for (std::size_t k : to_explain) graphs.push_back(&graph_for(k));
  const std::vector<ExplainOutcome> outcomes =
      explain_batch_outcomes(graphs, explain_pool_, factory_);

  // Stage boundary 3 (completion): a response that misses its deadline is
  // DeadlineExceeded even though the work finished — usefulness, not
  // effort, is the contract.
  const Clock::time_point now = Clock::now();
  for (std::size_t j = 0; j < to_explain.size(); ++j) {
    const std::size_t k = to_explain[j];
    Request& request = batch[live[k]];
    ExplanationResponse response;
    if (request.deadline < now) {
      response.status = ResponseStatus::DeadlineExceeded;
    } else if (outcomes[j].ok()) {
      response.status = ResponseStatus::Ok;
      response.prediction = predictions[k];
      // Reduced mode: the explainer ranked super-blocks; hand the caller a
      // ranking over its ORIGINAL node ids.
      response.ranking =
          config_.reduction
              ? project_ranking(outcomes[j].ranking, reductions[k].projection)
              : outcomes[j].ranking;
    } else {
      response.status = ResponseStatus::ExplainError;
      response.prediction = predictions[k];
      response.error = outcomes[j].error_message();
    }
    finish(request, std::move(response));
  }
}

ExplainerFactory make_cfg_explainer_factory(const GnnClassifier& gnn,
                                            ExplainerModel theta) {
  // std::function requires a copyable callable, so the move-only model
  // lives behind a shared_ptr; every factory call deep-copies it.
  auto shared = std::make_shared<ExplainerModel>(std::move(theta));
  return [&gnn, shared] {
    auto explainer = std::make_unique<CfgExplainer>(gnn);
    explainer->set_model(shared->clone());
    return explainer;
  };
}

}  // namespace cfgx::serve

