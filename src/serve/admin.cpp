#include "serve/admin.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace cfgx::serve {
namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

// Blocking write of the whole buffer; gives up on error (client gone).
void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(int code, const char* reason,
                          const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(code);
  out += ' ';
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

AdminServer::AdminServer(int port, Handler metrics, Handler statusz)
    : metrics_(std::move(metrics)), statusz_(std::move(statusz)) {
  if (port < 0 || port > 65535) {
    throw std::runtime_error("AdminServer: port outside [0, 65535]");
  }
  if (::pipe(wake_fds_) != 0) {
    throw std::runtime_error("AdminServer: pipe() failed");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    close_fd(wake_fds_[0]);
    close_fd(wake_fds_[1]);
    throw std::runtime_error("AdminServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string what =
        std::string("AdminServer: cannot bind 127.0.0.1:") +
        std::to_string(port) + " (" + std::strerror(errno) + ")";
    close_fd(listen_fd_);
    close_fd(wake_fds_[0]);
    close_fd(wake_fds_[1]);
    throw std::runtime_error(what);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread([this] { serve_loop(); });
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::stop() {
  // Serializing the whole body means every stop() returns only after the
  // acceptor has exited and the fds are closed.
  std::lock_guard lock(stop_mutex_);
  if (stopped_.exchange(true)) return;
  // Wake the poll(); the acceptor exits before any fd is closed.
  if (wake_fds_[1] >= 0) {
    const char byte = 'q';
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
  if (acceptor_.joinable()) acceptor_.join();
  close_fd(listen_fd_);
  close_fd(wake_fds_[0]);
  close_fd(wake_fds_[1]);
}

void AdminServer::serve_loop() {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_fds_[0];
    fds[1].events = POLLIN;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void AdminServer::handle_connection(int client_fd) {
  // Read until the end of headers (or a small cap — admin requests have
  // no body worth reading). A stalled client cannot wedge the acceptor
  // forever: 5s receive timeout, then the connection is dropped.
  timeval timeout{};
  timeout.tv_sec = 5;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::read(client_fd, buf, sizeof buf);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // not HTTP; drop silently

  // "GET /path HTTP/1.x"
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  const std::string method =
      sp1 == std::string::npos ? line : line.substr(0, sp1);
  std::string path = sp2 == std::string::npos
                         ? std::string()
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  std::string response;
  if (method != "GET") {
    response = http_response(405, "Method Not Allowed", "text/plain",
                             "only GET is supported\n");
  } else if (path == "/healthz") {
    response = http_response(200, "OK", "text/plain", "ok\n");
  } else if (path == "/metrics" || path == "/statusz") {
    const Handler& handler = path == "/metrics" ? metrics_ : statusz_;
    const char* content_type = path == "/metrics"
                                   ? "text/plain; version=0.0.4"
                                   : "application/json";
    try {
      response = http_response(200, "OK", content_type,
                               handler ? handler() : std::string());
    } catch (const std::exception& e) {
      response = http_response(500, "Internal Server Error", "text/plain",
                               std::string(e.what()) + "\n");
    } catch (...) {
      response = http_response(500, "Internal Server Error", "text/plain",
                               "handler failed\n");
    }
  } else {
    response = http_response(
        404, "Not Found", "text/plain",
        "routes: /metrics /healthz /statusz\n");
  }
  write_all(client_fd, response);
}

}  // namespace cfgx::serve
