// Minimal loopback HTTP/1.0 admin endpoint for a running engine.
//
// A long-running ExplanationEngine is invisible without a hole to look
// through: this server makes it scrapeable while it serves. It is
// deliberately NOT a web framework — one acceptor thread, HTTP/1.0 only
// (no keep-alive, no chunking, Connection: close on every response),
// loopback-bound (127.0.0.1; exposing it beyond the host is a proxy's
// job), GET-only, three routes:
//
//   /metrics  -> Prometheus text exposition of the global registry
//   /healthz  -> "ok\n" (liveness: the acceptor thread is responsive)
//   /statusz  -> engine status JSON (uptime, queue depth, in-flight,
//                batch stats, ISA/precision, last error, SLO burn rates)
//
// Handlers are injected as callbacks so the server knows nothing about
// the engine (the future training pipeline can mount its own /statusz).
// Requests are handled sequentially on the acceptor thread: a scrape is
// a few kilobytes once a second, and sequential handling keeps the
// server trivially race-free — handler callbacks must be thread-safe
// only against the process they observe, not against each other.
//
// Off by default: the engine starts one only when ServeConfig::admin_port
// is >= 0. Port 0 binds an ephemeral port; port() reports the bound port
// (that is what the tests and the bench print for curl).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace cfgx::serve {

class AdminServer {
 public:
  using Handler = std::function<std::string()>;

  // Binds and starts the acceptor thread immediately; throws
  // std::runtime_error when the port cannot be bound. `metrics` returns
  // the /metrics body, `statusz` the /statusz JSON body; a throwing
  // handler yields a 500 response, never a crash.
  AdminServer(int port, Handler metrics, Handler statusz);
  ~AdminServer();  // stop()

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // The actually bound port (resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

  // Closes the listener and joins the acceptor thread; idempotent. An
  // in-flight request finishes; queued connections are reset by the OS.
  void stop();

 private:
  void serve_loop();
  void handle_connection(int client_fd);

  Handler metrics_;
  Handler statusz_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe unblocking poll() on stop
  std::uint16_t port_ = 0;
  std::atomic<bool> stopped_{false};
  std::mutex stop_mutex_;  // serializes concurrent stop() joins
  std::thread acceptor_;
};

}  // namespace cfgx::serve
