// Long-running explanation-serving engine.
//
// One-shot benches build a graph, explain it, and exit; the ROADMAP
// north-star is a process that stays up and serves explanation requests
// continuously. ExplanationEngine accepts a stream of CFGs, packs admitted
// requests into batches — ONE block-diagonal CSR (BatchedCsr) + stacked
// feature matrix per batch — runs the classifier forward pass once for the
// whole batch, fans the explainers out over a thread pool, and completes
// each request's future with its own result or its own typed error.
//
// Prepare / execute split (after the popart session model): admission and
// preparation are separated from execution so the expensive work happens
// exactly once per request and on the dispatcher's schedule, not the
// caller's.
//   * prepare: per request, the adjacency is normalized ONCE and frozen as
//     a CSR (MaskedNormalizedAdjacency — the same frozen-structure form
//     the Algorithm-2 interpreter prunes in place), its d^{-1/2} vector
//     and active-node count captured. Scratch (stacked features, batched
//     embeddings, per-graph slices) is leased from the dispatcher thread's
//     Workspace, so a warmed-up engine performs no fresh workspace
//     allocation (steady-state `workspace.bytes_allocated` stays flat).
//   * execute: one embed_into over the batched CSR (bit-identical to
//     per-graph inference — see BatchedCsr), per-graph readout on row
//     slices, then explain_batch_outcomes for the rankings.
//
// Backpressure: the request queue is bounded (ServeConfig::queue_capacity).
// submit() never blocks — a request that would overflow the queue is
// rejected immediately with QueueFull, pushing flow control to the caller
// (retry, shed, or route elsewhere) instead of hiding an unbounded buffer
// inside the engine.
//
// Deadlines: each request carries an absolute deadline. The engine checks
// it at every stage boundary (dequeue, pre-explain, completion) and stops
// investing in an expired request at the first check that fails, completing
// its future with DeadlineExceeded — a typed response, never an exception
// or a crash. A request that expires after its work happened to finish
// still reports DeadlineExceeded: the contract is about response
// usefulness, not effort spent.
//
// Thread-safety: submit(), queue_depth() and stop() may be called from any
// thread. Exactly one dispatcher thread runs batches; explainers run on the
// engine's own pool via explain_batch_outcomes (one graph's explainer
// throwing costs only that request, as ExplainError).
// Telemetry (the live-observability layer rides on every request):
//   * each request gets a process-unique id at submit(); the id is the
//     Chrome-trace FLOW id linking the submit-thread span, the
//     dispatcher's batch spans and the completion into one arrow chain
//     (obs::trace_flow), and it is returned in the response;
//   * `serve.inflight` gauge counts submitted-but-unfinished requests;
//     `engine.uptime_seconds` is refreshed on every submit/batch/status;
//   * requests slower than ServeConfig::slow_request_threshold_seconds
//     are captured as exemplars (id, stage timings, prediction, top-k
//     node ids) — slow_exemplars() hands them to manifests;
//   * every finished request feeds an obs::SloTracker (availability +
//     latency objectives, multi-window burn rate, threshold-crossing
//     logs), surfaced by statusz_json();
//   * statusz_json() renders the live engine state (uptime, queue depth,
//     in-flight, ISA/precision, last error, SLO burns) and, together
//     with the Prometheus exposition of the global registry, backs the
//     optional loopback admin endpoint (ServeConfig::admin_port >= 0):
//     GET /metrics | /healthz | /statusz while the engine serves.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/explainer_model.hpp"
#include "explain/parallel.hpp"
#include "gnn/classifier.hpp"
#include "graph/acfg.hpp"
#include "graph/reduce.hpp"
#include "obs/slo.hpp"
#include "util/thread_pool.hpp"

namespace cfgx::serve {

class AdminServer;

enum class ResponseStatus : std::uint8_t {
  Ok = 0,
  QueueFull,          // rejected at admission (backpressure)
  DeadlineExceeded,   // deadline passed at a stage boundary
  ExplainError,       // the explainer threw for this graph; see `error`
  EngineStopped,      // engine stopped before this request executed
};

const char* to_string(ResponseStatus status) noexcept;

struct ServeConfig {
  // Requests waiting to execute; one more submit is rejected QueueFull.
  std::size_t queue_capacity = 64;
  // Max graphs packed into one batched forward pass.
  std::size_t max_batch = 8;
  // Workers for the explainer fan-out (0 = hardware concurrency).
  std::size_t explain_workers = 0;
  // Inference precision for the batched forward pass. Bf16 makes the
  // engine serve from its own precision-set clone of the borrowed GNN
  // (packed bf16 weights, fp32 accumulation — see matrix16.hpp); the
  // caller's model is untouched and the explainers still see it.
  Precision precision = Precision::Fp64;
  // Loopback admin endpoint (/metrics, /healthz, /statusz). Negative =
  // disabled (the default); 0 = ephemeral port (admin_port() tells).
  int admin_port = -1;
  // Requests with submit-to-finish latency above this are captured as
  // slow-request exemplars; 0 disables capture.
  double slow_request_threshold_seconds = 0.0;
  // At most this many exemplars are retained (oldest evicted first).
  std::size_t slow_exemplar_capacity = 32;
  // How many top-ranked node ids an exemplar keeps.
  std::size_t slow_exemplar_top_k = 10;
  // SLO objectives fed from every finished request (see obs/slo.hpp).
  obs::SloConfig slo;
  // Reduce-then-explain mode for paper-scale graphs: when set, each
  // admitted graph is coarsened (graph/reduce.hpp) during prepare, the
  // forward pass and the explainer run on the coarse graph, and the
  // response ranking is expanded back to ORIGINAL basic-block ids — callers
  // observe the same node id space in both modes. The reported prediction
  // is the classifier's verdict on the coarse graph (the reduction is
  // designed to preserve the Table-I feature distribution; the bench sweep
  // reports the measured fidelity@k against full-graph explanations).
  std::optional<ReduceConfig> reduction;
};

// One over-threshold request, enough to reconstruct its story without the
// full trace: where the time went (queue vs service), what the model said,
// and which nodes the explanation ranked on top.
struct SlowRequestExemplar {
  std::uint64_t request_id = 0;
  ResponseStatus status = ResponseStatus::Ok;
  double queue_seconds = 0.0;    // submit -> dispatcher dequeue
  double total_seconds = 0.0;    // submit -> finish
  std::size_t predicted_class = 0;
  double confidence = 0.0;
  std::vector<std::uint32_t> top_nodes;  // first slow_exemplar_top_k
};

struct ExplanationResponse {
  ResponseStatus status = ResponseStatus::EngineStopped;
  // The id assigned at submit(); also the Chrome-trace flow id of this
  // request's span chain. 0 only for default-constructed responses.
  std::uint64_t request_id = 0;
  // Batched-inference classification; valid on Ok and ExplainError (the
  // forward pass ran even when the explainer failed).
  Prediction prediction;
  // Valid on Ok only.
  NodeRanking ranking;
  // what() of the explainer's exception on ExplainError; empty otherwise.
  std::string error;

  bool ok() const noexcept { return status == ResponseStatus::Ok; }
};

class ExplanationEngine {
 public:
  using Clock = std::chrono::steady_clock;

  // `gnn` is borrowed and must outlive the engine. `factory` constructs an
  // explainer per pool worker per batch (see explain_batch_outcomes); it
  // must be callable concurrently from multiple threads.
  ExplanationEngine(const GnnClassifier& gnn, ExplainerFactory factory,
                    ServeConfig config = {});
  ~ExplanationEngine();  // stop()

  ExplanationEngine(const ExplanationEngine&) = delete;
  ExplanationEngine& operator=(const ExplanationEngine&) = delete;

  // Admits `graph` (taken by value: the request owns its payload) and
  // returns a future for its response. Never blocks: when the queue is at
  // capacity (QueueFull) or the engine is stopped (EngineStopped), the
  // returned future is already completed with that status. Throws
  // std::invalid_argument for a graph the borrowed GNN cannot classify
  // (zero nodes, or feature_count != the GNN's feature_dim) — caller bug,
  // not a runtime condition.
  std::future<ExplanationResponse> submit(
      Acfg graph, Clock::time_point deadline = Clock::time_point::max());

  // Requests admitted but not yet picked up by the dispatcher.
  std::size_t queue_depth() const;

  // Stops the dispatcher; every queued request completes with
  // EngineStopped. Idempotent; called by the destructor.
  void stop();

  const ServeConfig& config() const noexcept { return config_; }

  // Seconds since construction (also exported as the
  // `engine.uptime_seconds` gauge).
  double uptime_seconds() const;

  // Bound admin port; 0 when the admin endpoint is disabled.
  std::uint16_t admin_port() const noexcept;

  // Captured slow-request exemplars, oldest first (bounded by
  // ServeConfig::slow_exemplar_capacity).
  std::vector<SlowRequestExemplar> slow_exemplars() const;

  // Multi-window SLO burn rates over the finished-request stream.
  obs::SloStatus slo_status() const { return slo_.status(); }

  // The /statusz document: {"uptime_seconds":...,"queue_depth":...,
  // "inflight":...,"requests":{...},"batch":{...},"isa":...,
  // "precision":...,"last_error":...,"slo":{...}}. Callable from any
  // thread while the engine serves.
  std::string statusz_json() const;

 private:
  struct Request {
    Acfg graph;
    std::uint64_t id = 0;
    Clock::time_point deadline;
    Clock::time_point enqueued;
    Clock::time_point dequeued;
    std::promise<ExplanationResponse> promise;
  };

  void dispatcher_loop();
  void serve_batch(std::vector<Request>& batch);
  void finish(Request& request, ExplanationResponse response);
  void update_uptime_gauge() const;

  const GnnClassifier* gnn_;
  // Precision-set clone backing gnn_ when config_.precision != Fp64.
  std::unique_ptr<GnnClassifier> owned_gnn_;
  ExplainerFactory factory_;
  ServeConfig config_;
  ThreadPool explain_pool_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::mutex join_mutex_;  // serializes concurrent stop() joins
  std::thread dispatcher_;

  const Clock::time_point started_ = Clock::now();
  std::atomic<std::uint64_t> next_request_id_{1};
  obs::SloTracker slo_;

  mutable std::mutex telemetry_mutex_;  // exemplars + last error
  std::deque<SlowRequestExemplar> slow_exemplars_;
  std::string last_error_;

  // Constructed last, destroyed first: handlers read the members above.
  std::unique_ptr<AdminServer> admin_;
};

// Convenience factory for the common backend: CFGExplainer instances all
// serving one trained Theta. Each instance gets its own deep copy of the
// model (explainer state is per-call mutable), so the factory is safe to
// invoke concurrently from the engine's pool workers.
ExplainerFactory make_cfg_explainer_factory(const GnnClassifier& gnn,
                                            ExplainerModel theta);

}  // namespace cfgx::serve
