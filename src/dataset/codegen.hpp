// Code-generation toolkit for the synthetic corpus.
//
// Codegen wraps a ProgramBuilder with (a) benign scaffolding emitters
// (straight-line compute blocks, branch diamonds, counted loops, benign API
// usage) shared by all families, and (b) malicious *motif* emitters that
// plant the behaviours the paper's Table V observed in real samples:
//
//   - XOR-decoder loops and register/constant XOR obfuscation
//   - semantic-NOP sleds (nop / "mov esi, esi" / "xchg dl, dl")
//   - call-result code manipulation (call ...; mov eax, ...)
//   - Windows API behaviour chains (CreateThread/ReadFile/send, ...)
//   - self-looping blocks (unconditional jumps to themselves)
//   - dispatcher chains (bot command switches)
//
// Every motif emitter records the emitted instruction range in
// planted_ranges(); the corpus builder maps those ranges to basic blocks
// and marks them as ground-truth "malicious" nodes on the ACFG.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "isa/program.hpp"
#include "util/rng.hpp"

namespace cfgx {

using InstrRange = std::pair<std::size_t, std::size_t>;  // [first, last)

class Codegen {
 public:
  explicit Codegen(Rng& rng) : rng_(&rng) {}

  ProgramBuilder& builder() noexcept { return builder_; }
  Rng& rng() noexcept { return *rng_; }

  // Fresh unique label, e.g. "loop_17".
  std::string fresh_label(const std::string& stem);

  // --- benign scaffolding ---

  // Straight-line mov/arith/compare filler of `length` instructions.
  void emit_compute(std::size_t length);

  // cmp+jcc diamond: two alternative compute arms joining afterwards.
  void emit_branch_diamond(std::size_t arm_length);

  // Counted loop running a small compute body.
  void emit_counted_loop(std::size_t body_length, std::int64_t iterations);

  // A call to a harmless Windows API with argument pushes.
  void emit_benign_api_call();

  // A complete function: label, prologue, branches/loops/compute per
  // `block_budget`, optional benign API calls, epilogue + ret.
  // Returns the function's entry label.
  std::string emit_benign_function(std::size_t block_budget);

  // --- malicious motifs (plant-tracked) ---

  // XOR-decoder loop over a buffer: xor [ecx], key; inc ecx; cmp/jne.
  // byte_key selects the 8-bit register variant ("xor al, 55h" style).
  void emit_xor_decoder_loop(std::int64_t key, bool byte_key);

  // Single obfuscating XOR instructions woven into a compute block:
  // xor r1, r2 / xor reg, big-constant / xchg shuffles.
  void emit_xor_obfuscation_block(std::int64_t key);

  // nop / mov r,r / xchg r,r sled of `length` instructions.
  void emit_semantic_nop_sled(std::size_t length);

  // A block that loops itself with an unconditional jump (Bagle/Vundo
  // micro-analysis: "looping themselves using unconditional jumps").
  void emit_self_loop_block(std::size_t body_length);

  // call <api>; <instruction touching eax> — the paper's "code
  // manipulation" pattern. `follower_mem` is the memory expression the
  // following mov reads (e.g. "ebp+var_18").
  void emit_code_manipulation(const std::string& api,
                              const std::string& follower_mem);

  // Pushes plausible arguments and calls each API in order, with light
  // compute in between. One block-ish region; plant-tracked. The overload
  // with `context_string` pushes a family-characteristic string constant
  // first (mutex names, URLs, target filenames).
  void emit_api_chain(std::span<const char* const> apis);
  void emit_api_chain(std::span<const char* const> apis,
                      const char* context_string);

  // Bot command dispatcher: a chain of cmp-eax/je blocks fanning out to
  // `fanout` handler stubs that jump to a common exit. Structural motif.
  void emit_dispatcher(std::size_t fanout);

  const std::vector<InstrRange>& planted_ranges() const noexcept {
    return planted_;
  }

  Program finish() { return builder_.build(); }

 private:
  // RAII plant-range recorder.
  class PlantScope {
   public:
    explicit PlantScope(Codegen& gen)
        : gen_(gen), first_(gen.builder_.next_index()) {}
    ~PlantScope() {
      gen_.planted_.emplace_back(first_, gen_.builder_.next_index());
    }
    PlantScope(const PlantScope&) = delete;
    PlantScope& operator=(const PlantScope&) = delete;

   private:
    Codegen& gen_;
    std::size_t first_;
  };

  Register random_gp_register();
  void emit_one_filler_instruction();

  ProgramBuilder builder_;
  Rng* rng_;
  std::vector<InstrRange> planted_;
  std::size_t label_counter_ = 0;
};

}  // namespace cfgx
