#include "dataset/families.hpp"

#include <stdexcept>

namespace cfgx {

const char* to_string(Family family) noexcept {
  switch (family) {
    case Family::Bagle: return "Bagle";
    case Family::Bifrose: return "Bifrose";
    case Family::Hupigon: return "Hupigon";
    case Family::Ldpinch: return "Ldpinch";
    case Family::Lmir: return "Lmir";
    case Family::Rbot: return "Rbot";
    case Family::Sdbot: return "Sdbot";
    case Family::Swizzor: return "Swizzor";
    case Family::Vundo: return "Vundo";
    case Family::Zbot: return "Zbot";
    case Family::Zlob: return "Zlob";
    case Family::Benign: return "Benign";
  }
  return "?";
}

Family family_from_string(const std::string& name) {
  for (Family family : kAllFamilies) {
    if (name == to_string(family)) return family;
  }
  throw std::invalid_argument("unknown family name: '" + name + "'");
}

Family family_from_label(int label) {
  if (label < 0 || label >= static_cast<int>(kFamilyCount)) {
    throw std::invalid_argument("family label out of range: " + std::to_string(label));
  }
  return static_cast<Family>(label);
}

}  // namespace cfgx
