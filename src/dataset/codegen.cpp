#include "dataset/codegen.hpp"

#include <array>

namespace cfgx {
namespace {

constexpr std::array kGpRegisters = {Register::Eax, Register::Ebx, Register::Ecx,
                                     Register::Edx, Register::Esi, Register::Edi};

constexpr std::array kBenignApis = {
    "ds:GetModuleHandleA", "ds:HeapAlloc",     "ds:GetLastError",
    "ds:lstrlenA",         "ds:GetCurrentProcessId", "ds:CloseHandle",
};

constexpr std::array kLocalSlots = {"ebp+var_4",  "ebp+var_8",  "ebp+var_C",
                                    "ebp+var_10", "ebp+var_18", "ebp+arg_0"};

}  // namespace

std::string Codegen::fresh_label(const std::string& stem) {
  return stem + "_" + std::to_string(label_counter_++);
}

Register Codegen::random_gp_register() {
  return kGpRegisters[rng_->uniform_index(kGpRegisters.size())];
}

void Codegen::emit_one_filler_instruction() {
  const Register dst = random_gp_register();
  const Register src = random_gp_register();
  switch (rng_->uniform_index(8)) {
    case 0:
      builder_.emit(Opcode::Mov, Operand::make_reg(dst),
                    Operand::make_imm(rng_->uniform_int(0, 255)));
      break;
    case 1:
      builder_.emit(Opcode::Mov, Operand::make_reg(dst),
                    Operand::make_mem(kLocalSlots[rng_->uniform_index(
                        kLocalSlots.size())]));
      break;
    case 2:
      builder_.emit(Opcode::Add, Operand::make_reg(dst),
                    Operand::make_imm(rng_->uniform_int(1, 64)));
      break;
    case 3:
      builder_.emit(Opcode::Sub, Operand::make_reg(dst), Operand::make_reg(src));
      break;
    case 4:
      builder_.emit(Opcode::Inc, Operand::make_reg(dst));
      break;
    case 5:
      builder_.emit(Opcode::Shl, Operand::make_reg(dst),
                    Operand::make_imm(rng_->uniform_int(1, 4)));
      break;
    case 6:
      builder_.emit(Opcode::Push, Operand::make_reg(dst));
      break;
    default:
      builder_.emit(Opcode::Lea, Operand::make_reg(dst),
                    Operand::make_mem(kLocalSlots[rng_->uniform_index(
                        kLocalSlots.size())]));
      break;
  }
}

void Codegen::emit_compute(std::size_t length) {
  for (std::size_t i = 0; i < length; ++i) emit_one_filler_instruction();
}

void Codegen::emit_branch_diamond(std::size_t arm_length) {
  const std::string else_label = fresh_label("loc_else");
  const std::string join_label = fresh_label("loc_join");
  builder_.emit(Opcode::Cmp, Operand::make_reg(random_gp_register()),
                Operand::make_imm(rng_->uniform_int(0, 16)));
  builder_.jcc(Opcode::Je, else_label);
  emit_compute(arm_length);
  builder_.jmp(join_label);
  builder_.label(else_label);
  emit_compute(arm_length);
  builder_.label(join_label);
}

void Codegen::emit_counted_loop(std::size_t body_length, std::int64_t iterations) {
  const std::string loop_label = fresh_label("loop");
  builder_.emit(Opcode::Mov, Operand::make_reg(Register::Ecx),
                Operand::make_imm(iterations));
  builder_.label(loop_label);
  emit_compute(body_length);
  builder_.emit(Opcode::Dec, Operand::make_reg(Register::Ecx));
  builder_.emit(Opcode::Cmp, Operand::make_reg(Register::Ecx),
                Operand::make_imm(0));
  builder_.jcc(Opcode::Jne, loop_label);
}

void Codegen::emit_benign_api_call() {
  // Benign code occasionally references string constants (paths, section
  // names) so the Table-I #string-constants feature is not a dead column.
  static constexpr std::array kBenignStrings = {"config.ini", "kernel32.dll",
                                                ".rdata", "C:\\Temp"};
  if (rng_->bernoulli(0.3)) {
    builder_.emit(Opcode::Push,
                  Operand::make_string(
                      kBenignStrings[rng_->uniform_index(kBenignStrings.size())]));
  }
  builder_.emit(Opcode::Push, Operand::make_imm(rng_->uniform_int(0, 32)));
  builder_.call_api(kBenignApis[rng_->uniform_index(kBenignApis.size())]);
  // Benign code stores the result to a local instead of immediately
  // manipulating EAX in the suspicious "code manipulation" shape.
  builder_.emit(Opcode::Mov,
                Operand::make_mem(kLocalSlots[rng_->uniform_index(
                    kLocalSlots.size())]),
                Operand::make_reg(Register::Ebx));
}

std::string Codegen::emit_benign_function(std::size_t block_budget) {
  const std::string entry = fresh_label("sub");
  builder_.label(entry);
  builder_.emit(Opcode::Push, Operand::make_reg(Register::Ebp));
  builder_.emit(Opcode::Mov, Operand::make_reg(Register::Ebp),
                Operand::make_reg(Register::Esp));

  std::size_t budget = block_budget;
  while (budget > 0) {
    switch (rng_->uniform_index(4)) {
      case 0:
        emit_branch_diamond(2 + rng_->uniform_index(4));
        budget = budget >= 3 ? budget - 3 : 0;
        break;
      case 1:
        emit_counted_loop(2 + rng_->uniform_index(3), rng_->uniform_int(4, 64));
        budget = budget >= 2 ? budget - 2 : 0;
        break;
      case 2:
        emit_compute(3 + rng_->uniform_index(5));
        budget -= 1;
        break;
      default:
        emit_benign_api_call();
        emit_compute(1 + rng_->uniform_index(3));
        budget -= 1;
        break;
    }
  }

  builder_.emit(Opcode::Pop, Operand::make_reg(Register::Ebp));
  builder_.ret();
  return entry;
}

void Codegen::emit_xor_decoder_loop(std::int64_t key, bool byte_key) {
  PlantScope plant(*this);
  const std::string loop_label = fresh_label("decode");
  builder_.emit(Opcode::Mov, Operand::make_reg(Register::Ecx),
                Operand::make_mem("ebp+lpBuffer"));
  builder_.emit(Opcode::Mov, Operand::make_reg(Register::Edx),
                Operand::make_imm(rng_->uniform_int(32, 256)));
  builder_.label(loop_label);
  if (byte_key) {
    // "xor al, 55h" style: byte-register with byte key.
    builder_.emit(Opcode::Mov, Operand::make_reg(Register::Al),
                  Operand::make_mem("ecx"));
    builder_.emit(Opcode::Xor, Operand::make_reg(Register::Al),
                  Operand::make_imm(key & 0xff));
    builder_.emit(Opcode::Mov, Operand::make_mem("ecx"),
                  Operand::make_reg(Register::Al));
  } else {
    builder_.emit(Opcode::Xor, Operand::make_mem("ecx"), Operand::make_imm(key));
  }
  builder_.emit(Opcode::Inc, Operand::make_reg(Register::Ecx));
  builder_.emit(Opcode::Dec, Operand::make_reg(Register::Edx));
  builder_.emit(Opcode::Cmp, Operand::make_reg(Register::Edx),
                Operand::make_imm(0));
  builder_.jcc(Opcode::Jnz, loop_label);
}

void Codegen::emit_xor_obfuscation_block(std::int64_t key) {
  PlantScope plant(*this);
  // Register-to-register XOR scrambling with xchg shuffles, as in the
  // paper's Bifrose example: "xor [ecx],al; xchg al,ah; xor eax,ecx".
  builder_.emit(Opcode::Xor, Operand::make_mem("ecx"),
                Operand::make_reg(Register::Al));
  builder_.emit(Opcode::Xchg, Operand::make_reg(Register::Al),
                Operand::make_reg(Register::Ah));
  builder_.emit(Opcode::Xor, Operand::make_reg(Register::Eax),
                Operand::make_reg(Register::Ecx));
  builder_.emit(Opcode::Xor, Operand::make_reg(Register::Edi),
                Operand::make_imm(key));
  builder_.emit(Opcode::Xor, Operand::make_reg(Register::Edx),
                Operand::make_reg(Register::Esi));
}

void Codegen::emit_semantic_nop_sled(std::size_t length) {
  PlantScope plant(*this);
  for (std::size_t i = 0; i < length; ++i) {
    switch (rng_->uniform_index(4)) {
      case 0:
        builder_.emit(Opcode::Nop);
        break;
      case 1: {
        const Register r = random_gp_register();
        builder_.emit(Opcode::Mov, Operand::make_reg(r), Operand::make_reg(r));
        break;
      }
      case 2:
        builder_.emit(Opcode::Xchg, Operand::make_reg(Register::Dl),
                      Operand::make_reg(Register::Dl));
        break;
      default:
        builder_.emit(Opcode::Xchg, Operand::make_reg(Register::Esp),
                      Operand::make_reg(Register::Esp));
        break;
    }
  }
}

void Codegen::emit_self_loop_block(std::size_t body_length) {
  PlantScope plant(*this);
  const std::string self_label = fresh_label("self");
  builder_.label(self_label);
  emit_semantic_nop_sled(body_length);
  builder_.jmp(self_label);
}

void Codegen::emit_code_manipulation(const std::string& api,
                                     const std::string& follower_mem) {
  PlantScope plant(*this);
  builder_.emit(Opcode::Push, Operand::make_imm(rng_->uniform_int(0, 4096)));
  builder_.call_api(api);
  // The defining pattern: the instruction immediately after the call
  // consumes/overwrites EAX.
  if (follower_mem.empty()) {
    builder_.emit(Opcode::Pop, Operand::make_reg(Register::Eax));
    builder_.emit(Opcode::Add, Operand::make_reg(Register::Esi),
                  Operand::make_reg(Register::Eax));
  } else {
    builder_.emit(Opcode::Mov, Operand::make_reg(Register::Eax),
                  Operand::make_mem(follower_mem));
  }
}

void Codegen::emit_api_chain(std::span<const char* const> apis) {
  return emit_api_chain(apis, nullptr);
}

void Codegen::emit_api_chain(std::span<const char* const> apis,
                             const char* context_string) {
  PlantScope plant(*this);
  if (context_string != nullptr) {
    builder_.emit(Opcode::Push, Operand::make_string(context_string));
  }
  for (const char* api : apis) {
    builder_.emit(Opcode::Push,
                  Operand::make_mem(kLocalSlots[rng_->uniform_index(
                      kLocalSlots.size())]));
    builder_.emit(Opcode::Push, Operand::make_imm(rng_->uniform_int(0, 64)));
    builder_.call_api(api);
    builder_.emit(Opcode::Test, Operand::make_reg(Register::Eax),
                  Operand::make_reg(Register::Eax));
  }
}

void Codegen::emit_dispatcher(std::size_t fanout) {
  PlantScope plant(*this);
  const std::string exit_label = fresh_label("disp_exit");
  std::vector<std::string> cases;
  cases.reserve(fanout);
  for (std::size_t i = 0; i < fanout; ++i) cases.push_back(fresh_label("case"));

  for (std::size_t i = 0; i < fanout; ++i) {
    builder_.emit(Opcode::Cmp, Operand::make_reg(Register::Eax),
                  Operand::make_imm(static_cast<std::int64_t>(i)));
    builder_.jcc(Opcode::Je, cases[i]);
  }
  builder_.jmp(exit_label);
  for (std::size_t i = 0; i < fanout; ++i) {
    builder_.label(cases[i]);
    emit_compute(2 + rng_->uniform_index(3));
    builder_.jmp(exit_label);
  }
  builder_.label(exit_label);
}

}  // namespace cfgx
