// Synthetic sample generation: Family -> Program -> ACFG with ground truth.
//
// Each family recipe emits shared benign scaffolding (functions with
// branches, loops, benign API use) plus the family's malicious motif
// functions. The motifs are chosen to reproduce the behaviours the paper's
// Table V attributes to each family, e.g.:
//
//   Bagle    semantic-NOP sleds, call/pop-eax manipulation, self-loops
//   Bifrose  Sleep-result manipulation, xor/xchg scrambles, backdoor socket
//   Hupigon  "xor al, 55h" byte-key decoder, registry + process creation
//   Ldpinch  CreateThread/CreatePipe/ReadFile/send credential exfiltration
//   Lmir     GetModuleFileNameA manipulation, decoder, file theft
//   Rbot     command dispatcher chains, socket loops
//   Sdbot    QueryPerformanceCounter manipulation, smaller dispatcher
//   Swizzor  _SEH_prolog manipulation, xor eax,0FFFFFFFFh, HTTP chains
//   Vundo    68A25749h-key XOR, NOP sleds, code injection APIs
//   Zbot     87BDC1D7h-key XOR, j_SleepEx manipulation, crypto + registry
//   Zlob     wsprintfA manipulation, registry + fake-codec process spawn
//   Benign   scaffolding only — no motifs, no planted nodes
#pragma once

#include <cstdint>

#include "dataset/codegen.hpp"
#include "dataset/families.hpp"
#include "graph/acfg.hpp"
#include "util/rng.hpp"

namespace cfgx {

struct GeneratorConfig {
  std::size_t min_benign_functions = 3;
  std::size_t max_benign_functions = 6;
  std::size_t min_block_budget = 4;   // per benign function
  std::size_t max_block_budget = 9;
  std::size_t min_motif_repeats = 2;  // malicious functions per sample
  std::size_t max_motif_repeats = 4;
  // When non-zero, generate_acfg grows the benign scaffolding until the
  // lifted graph has at least this many basic blocks (paper-scale graphs:
  // the dataset's largest CFG has 7352 nodes). The motif count stays as
  // configured — large graphs are mostly benign code, as in the real
  // corpus. Typical overshoot is one function's worth of blocks.
  std::size_t target_blocks = 0;
};

struct GeneratedSample {
  Program program;
  std::vector<InstrRange> planted;  // instruction ranges of malicious motifs
};

// Deterministic in (family, rng state, config).
GeneratedSample generate_program(Family family, Rng& rng,
                                 const GeneratorConfig& config = {});

// Full pipeline: generate -> lift -> Table-I features -> planted-node
// ground truth. The returned graph's label/family are set from `family`.
Acfg generate_acfg(Family family, Rng& rng, const GeneratorConfig& config = {});

}  // namespace cfgx
