#include "dataset/generator.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/features.hpp"
#include "isa/lifter.hpp"

namespace cfgx {
namespace {

// Emits one malicious function for `family` and returns its entry label.
// Every motif call inside is plant-tracked by Codegen.
std::string emit_malicious_function(Codegen& gen, Family family) {
  Rng& rng = gen.rng();
  ProgramBuilder& b = gen.builder();
  const std::string entry = gen.fresh_label("mal");
  b.label(entry);
  b.emit(Opcode::Push, Operand::make_reg(Register::Ebp));
  b.emit(Opcode::Mov, Operand::make_reg(Register::Ebp),
         Operand::make_reg(Register::Esp));

  switch (family) {
    case Family::Bagle: {
      gen.emit_semantic_nop_sled(6 + rng.uniform_index(6));
      gen.emit_code_manipulation("sub_414120", "");  // call; pop eax; add esi,eax
      if (rng.bernoulli(0.7)) gen.emit_self_loop_block(2 + rng.uniform_index(3));
      static constexpr std::array apis = {"ds:CreateFileA", "ds:WriteFile",
                                          "ds:send"};
      gen.emit_api_chain(apis, "smtp.mail.ru");
      break;
    }
    case Family::Bifrose: {
      gen.emit_code_manipulation("ds:Sleep", "ebp+var_EC.hProcess");
      gen.emit_xor_obfuscation_block(rng.uniform_int(0x1000, 0xffff));
      static constexpr std::array apis = {"ds:socket", "ds:connect", "ds:recv",
                                          "ds:send"};
      gen.emit_api_chain(apis);
      break;
    }
    case Family::Hupigon: {
      gen.emit_xor_decoder_loop(0x55, /*byte_key=*/true);
      static constexpr std::array apis = {"ds:RegOpenKeyA", "ds:RegSetValueA",
                                          "ds:CreateProcessA"};
      gen.emit_api_chain(apis);
      break;
    }
    case Family::Ldpinch: {
      gen.emit_code_manipulation("sub_4010A6", "");
      static constexpr std::array apis = {
          "ds:CreateThread", "ds:CreatePipe", "ds:ReadFile",
          "ds:send",         "ds:recv",       "ds:WriteFile",
          "ds:CreateProcessA"};
      gen.emit_api_chain(apis, "\\pstorec.dll");
      break;
    }
    case Family::Lmir: {
      gen.emit_code_manipulation("ds:GetModuleFileNameA", "ebp+var_C");
      gen.emit_xor_obfuscation_block(rng.uniform_int(0x10, 0xff));
      static constexpr std::array apis = {"ds:CreateFileA", "ds:ReadFile",
                                          "ds:send"};
      gen.emit_api_chain(apis);
      break;
    }
    case Family::Rbot: {
      gen.emit_dispatcher(6 + rng.uniform_index(5));
      gen.emit_code_manipulation("sub_619E4", "ebp+var_18");
      static constexpr std::array apis = {"ds:socket", "ds:connect", "ds:send",
                                          "ds:recv"};
      gen.emit_api_chain(apis);
      break;
    }
    case Family::Sdbot: {
      gen.emit_code_manipulation("ds:QueryPerformanceCounter", "ebp+var_9C");
      gen.emit_dispatcher(3 + rng.uniform_index(3));
      static constexpr std::array apis = {"ds:socket", "ds:send"};
      gen.emit_api_chain(apis);
      break;
    }
    case Family::Swizzor: {
      gen.emit_code_manipulation("_SEH_prolog", "dword_4347E8");
      gen.emit_xor_obfuscation_block(0xFFFFFFFF);
      static constexpr std::array apis = {"ds:InternetOpenA",
                                          "ds:HttpSendRequestA"};
      gen.emit_api_chain(apis, "http://ads.example/track");
      break;
    }
    case Family::Vundo: {
      gen.emit_xor_obfuscation_block(0x68A25749);
      gen.emit_semantic_nop_sled(8 + rng.uniform_index(7));
      if (rng.bernoulli(0.5)) gen.emit_self_loop_block(2 + rng.uniform_index(2));
      static constexpr std::array apis = {"ds:VirtualAlloc",
                                          "ds:WriteProcessMemory"};
      gen.emit_api_chain(apis);
      break;
    }
    case Family::Zbot: {
      gen.emit_code_manipulation("j_SleepEx", "ecx");
      gen.emit_xor_obfuscation_block(0x87BDC1D7);
      static constexpr std::array apis = {"ds:CryptEncrypt", "ds:RegSetValueA",
                                          "ds:send"};
      gen.emit_api_chain(apis);
      break;
    }
    case Family::Zlob: {
      gen.emit_code_manipulation("ds:wsprintfA", "ebp+hModule");
      static constexpr std::array apis = {"ds:RegCreateKeyA",
                                          "ds:CreateProcessA",
                                          "ds:LoadLibraryA"};
      gen.emit_api_chain(apis, "videocodec.dll");
      break;
    }
    case Family::Benign:
      // No malicious motifs; a benign function stands in.
      gen.emit_compute(4 + rng.uniform_index(4));
      break;
  }

  b.emit(Opcode::Pop, Operand::make_reg(Register::Ebp));
  b.ret();
  return entry;
}

// Per-family structural knobs layered over GeneratorConfig so families also
// differ topologically (function count bias, loop/dispatcher density).
std::size_t benign_function_count(Family family, Rng& rng,
                                  const GeneratorConfig& config) {
  std::size_t lo = config.min_benign_functions;
  std::size_t hi = config.max_benign_functions;
  switch (family) {
    case Family::Swizzor:  // deep call chains: more, smaller functions
      lo += 2; hi += 3;
      break;
    case Family::Rbot:
    case Family::Sdbot:    // bots: moderate count
      lo += 1; hi += 1;
      break;
    case Family::Benign:   // richest benign scaffolding
      lo += 1; hi += 2;
      break;
    default:
      break;
  }
  return lo + rng.uniform_index(hi - lo + 1);
}

}  // namespace

GeneratedSample generate_program(Family family, Rng& rng,
                                 const GeneratorConfig& config) {
  if (config.min_benign_functions == 0 ||
      config.min_benign_functions > config.max_benign_functions ||
      config.min_block_budget > config.max_block_budget ||
      config.min_motif_repeats > config.max_motif_repeats) {
    throw std::invalid_argument("generate_program: inconsistent GeneratorConfig");
  }

  Codegen gen(rng);
  ProgramBuilder& b = gen.builder();

  std::vector<std::string> function_labels;

  const std::size_t benign_count = benign_function_count(family, rng, config);
  for (std::size_t i = 0; i < benign_count; ++i) {
    const std::size_t budget =
        config.min_block_budget +
        rng.uniform_index(config.max_block_budget - config.min_block_budget + 1);
    function_labels.push_back(gen.emit_benign_function(budget));
  }

  std::size_t motif_count =
      config.min_motif_repeats +
      rng.uniform_index(config.max_motif_repeats - config.min_motif_repeats + 1);
  if (family == Family::Benign) motif_count = 1;  // one extra benign function
  for (std::size_t i = 0; i < motif_count; ++i) {
    function_labels.push_back(emit_malicious_function(gen, family));
  }

  // Entry function: calls every generated function so the whole CFG is
  // connected through call edges, in shuffled order.
  rng.shuffle(function_labels);
  b.label("start");
  b.emit(Opcode::Push, Operand::make_reg(Register::Ebp));
  b.emit(Opcode::Mov, Operand::make_reg(Register::Ebp),
         Operand::make_reg(Register::Esp));
  for (const std::string& label : function_labels) {
    b.call_label(label);
  }
  b.emit(Opcode::Pop, Operand::make_reg(Register::Ebp));
  b.ret();

  GeneratedSample sample;
  sample.planted = gen.planted_ranges();
  sample.program = gen.finish();
  return sample;
}

Acfg generate_acfg(Family family, Rng& rng, const GeneratorConfig& config) {
  GeneratorConfig attempt = config;
  for (;;) {
    const GeneratedSample sample = generate_program(family, rng, attempt);
    const LiftedCfg cfg = lift_program(sample.program);

    if (config.target_blocks != 0 &&
        cfg.block_count() < config.target_blocks) {
      // Short of the target: scale the benign function count by the block
      // shortfall and regenerate. Convergence is geometric (the second
      // attempt usually lands within a few percent of the target), and the
      // result stays a pure function of (family, rng state, config).
      const std::uint64_t blocks = cfg.block_count();
      const std::uint64_t scaled =
          (static_cast<std::uint64_t>(attempt.max_benign_functions) *
               config.target_blocks +
           blocks - 1) /
          blocks;
      const std::size_t functions = static_cast<std::size_t>(std::max<std::uint64_t>(
          attempt.max_benign_functions + 1, scaled));
      attempt.min_benign_functions = functions;
      attempt.max_benign_functions = functions;
      continue;
    }

    Acfg graph = to_acfg(cfg, family_label(family), to_string(family));
    for (const InstrRange& range : sample.planted) {
      for (std::size_t i = range.first; i < range.second; ++i) {
        graph.mark_planted(cfg.block_of_instruction(i));
      }
    }
    return graph;
  }
}

}  // namespace cfgx
