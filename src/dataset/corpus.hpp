// Corpus: a balanced collection of ACFGs across all 12 families, mirroring
// the paper's 1056-graph YANCFG dataset (equally distributed per family).
//
// Each sample records the seed it was generated from, so the full Program
// (assembly listing) can be regenerated deterministically for qualitative
// analysis (Table V) without keeping every instruction stream resident.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/families.hpp"
#include "dataset/generator.hpp"
#include "graph/acfg.hpp"
#include "util/rng.hpp"

namespace cfgx {

struct CorpusConfig {
  std::size_t samples_per_family = 40;
  std::uint64_t seed = 2022;
  GeneratorConfig generator;
};

class Corpus {
 public:
  Corpus(std::vector<Acfg> graphs, std::vector<std::uint64_t> sample_seeds,
         CorpusConfig config);

  std::size_t size() const noexcept { return graphs_.size(); }
  const std::vector<Acfg>& graphs() const noexcept { return graphs_; }
  const Acfg& graph(std::size_t index) const { return graphs_.at(index); }
  std::uint64_t sample_seed(std::size_t index) const {
    return sample_seeds_.at(index);
  }
  const CorpusConfig& config() const noexcept { return config_; }

  // Indices of all samples of one family.
  std::vector<std::size_t> indices_of(Family family) const;

 private:
  std::vector<Acfg> graphs_;
  std::vector<std::uint64_t> sample_seeds_;
  CorpusConfig config_;
};

// Builds samples_per_family graphs for each of the 12 families.
Corpus generate_corpus(const CorpusConfig& config = {});

// Rebuilds the Program + plant ranges of sample `index` (deterministic).
GeneratedSample regenerate_sample(const Corpus& corpus, std::size_t index);

// Stratified train/test split: within each family, floor(train_fraction *
// per-family count) samples go to train, the rest to test, after a seeded
// shuffle.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

Split stratified_split(const Corpus& corpus, double train_fraction,
                       std::uint64_t seed);

// Z-score feature standardization fitted on a subset of graphs (train
// split); columns with zero variance pass through unscaled.
class FeatureScaler {
 public:
  FeatureScaler() = default;

  void fit(const Corpus& corpus, const std::vector<std::size_t>& indices);

  bool fitted() const noexcept { return !mean_.empty(); }

  // Returns standardized copy of a raw feature matrix.
  Matrix transform(const Matrix& features) const;

  // Destination-passing variant: reshapes `out` (capacity-reusing) and
  // writes the standardized features. `out` must not alias `features`.
  void transform_into(const Matrix& features, Matrix& out) const;

  const std::vector<double>& mean() const noexcept { return mean_; }
  const std::vector<double>& stddev() const noexcept { return stddev_; }

  // (De)serialization via two row vectors.
  Matrix to_matrix() const;                       // [2, d]: mean; stddev
  static FeatureScaler from_matrix(const Matrix& packed);

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace cfgx
