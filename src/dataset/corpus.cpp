#include "dataset/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cfgx {
namespace {

// Sample seeds are derived from (corpus seed, family, index) so each sample
// is independently reproducible.
std::uint64_t derive_sample_seed(std::uint64_t corpus_seed, Family family,
                                 std::size_t index) {
  std::uint64_t state = corpus_seed ^ (0x9e3779b97f4a7c15ULL *
                                       (static_cast<std::uint64_t>(family) + 1));
  state ^= 0xc2b2ae3d27d4eb4fULL * (static_cast<std::uint64_t>(index) + 1);
  return splitmix64(state);
}

}  // namespace

Corpus::Corpus(std::vector<Acfg> graphs, std::vector<std::uint64_t> sample_seeds,
               CorpusConfig config)
    : graphs_(std::move(graphs)),
      sample_seeds_(std::move(sample_seeds)),
      config_(config) {
  if (graphs_.size() != sample_seeds_.size()) {
    throw std::invalid_argument("Corpus: graphs/seeds size mismatch");
  }
}

std::vector<std::size_t> Corpus::indices_of(Family family) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < graphs_.size(); ++i) {
    if (graphs_[i].label() == family_label(family)) out.push_back(i);
  }
  return out;
}

Corpus generate_corpus(const CorpusConfig& config) {
  if (config.samples_per_family == 0) {
    throw std::invalid_argument("generate_corpus: samples_per_family must be > 0");
  }
  std::vector<Acfg> graphs;
  std::vector<std::uint64_t> seeds;
  graphs.reserve(kFamilyCount * config.samples_per_family);
  for (Family family : kAllFamilies) {
    for (std::size_t i = 0; i < config.samples_per_family; ++i) {
      const std::uint64_t seed = derive_sample_seed(config.seed, family, i);
      Rng rng(seed);
      graphs.push_back(generate_acfg(family, rng, config.generator));
      seeds.push_back(seed);
    }
  }
  return Corpus(std::move(graphs), std::move(seeds), config);
}

GeneratedSample regenerate_sample(const Corpus& corpus, std::size_t index) {
  const Acfg& graph = corpus.graph(index);
  Rng rng(corpus.sample_seed(index));
  return generate_program(family_from_label(graph.label()), rng,
                          corpus.config().generator);
}

Split stratified_split(const Corpus& corpus, double train_fraction,
                       std::uint64_t seed) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("stratified_split: fraction must be in (0,1)");
  }
  Rng rng(seed);
  Split split;
  for (Family family : kAllFamilies) {
    std::vector<std::size_t> indices = corpus.indices_of(family);
    rng.shuffle(indices);
    const auto train_count = static_cast<std::size_t>(
        std::floor(train_fraction * static_cast<double>(indices.size())));
    for (std::size_t i = 0; i < indices.size(); ++i) {
      (i < train_count ? split.train : split.test).push_back(indices[i]);
    }
  }
  return split;
}

void FeatureScaler::fit(const Corpus& corpus,
                        const std::vector<std::size_t>& indices) {
  if (indices.empty()) throw std::invalid_argument("FeatureScaler::fit: no samples");
  const std::size_t d = corpus.graph(indices.front()).feature_count();
  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);

  std::size_t total_rows = 0;
  for (std::size_t index : indices) {
    const Matrix& x = corpus.graph(index).features();
    for (std::size_t r = 0; r < x.rows(); ++r) {
      for (std::size_t c = 0; c < d; ++c) mean_[c] += x(r, c);
    }
    total_rows += x.rows();
  }
  for (double& m : mean_) m /= static_cast<double>(total_rows);

  for (std::size_t index : indices) {
    const Matrix& x = corpus.graph(index).features();
    for (std::size_t r = 0; r < x.rows(); ++r) {
      for (std::size_t c = 0; c < d; ++c) {
        const double delta = x(r, c) - mean_[c];
        stddev_[c] += delta * delta;
      }
    }
  }
  for (double& s : stddev_) {
    s = std::sqrt(s / static_cast<double>(total_rows));
    if (s < 1e-12) s = 1.0;  // constant column: pass through
  }
}

Matrix FeatureScaler::transform(const Matrix& features) const {
  Matrix out;
  transform_into(features, out);
  return out;
}

void FeatureScaler::transform_into(const Matrix& features, Matrix& out) const {
  if (!fitted()) throw std::logic_error("FeatureScaler::transform before fit");
  if (features.cols() != mean_.size()) {
    throw std::invalid_argument("FeatureScaler::transform: column mismatch");
  }
  out.reshape(features.rows(), features.cols());
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = (features(r, c) - mean_[c]) / stddev_[c];
    }
  }
}

Matrix FeatureScaler::to_matrix() const {
  if (!fitted()) throw std::logic_error("FeatureScaler::to_matrix before fit");
  Matrix packed(2, mean_.size());
  for (std::size_t c = 0; c < mean_.size(); ++c) {
    packed(0, c) = mean_[c];
    packed(1, c) = stddev_[c];
  }
  return packed;
}

FeatureScaler FeatureScaler::from_matrix(const Matrix& packed) {
  if (packed.rows() != 2 || packed.cols() == 0) {
    throw std::invalid_argument("FeatureScaler::from_matrix: expected [2, d]");
  }
  FeatureScaler scaler;
  scaler.mean_.resize(packed.cols());
  scaler.stddev_.resize(packed.cols());
  for (std::size_t c = 0; c < packed.cols(); ++c) {
    scaler.mean_[c] = packed(0, c);
    const double s = packed(1, c);
    if (s <= 0.0) {
      throw std::invalid_argument("FeatureScaler::from_matrix: non-positive stddev");
    }
    scaler.stddev_[c] = s;
  }
  return scaler;
}

}  // namespace cfgx
