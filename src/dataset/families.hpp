// The 12 ACFG classes of the paper's YANCFG dataset: 11 malware families
// (Bagle, Bifrose, Hupigon, Ldpinch, Lmir, Rbot, Sdbot, Swizzor, Vundo,
// Zbot, Zlob) and one Benign class.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace cfgx {

enum class Family : int {
  Bagle = 0,
  Bifrose,
  Hupigon,
  Ldpinch,
  Lmir,
  Rbot,
  Sdbot,
  Swizzor,
  Vundo,
  Zbot,
  Zlob,
  Benign,
};

inline constexpr std::size_t kFamilyCount = 12;

inline constexpr std::array<Family, kFamilyCount> kAllFamilies = {
    Family::Bagle, Family::Bifrose, Family::Hupigon, Family::Ldpinch,
    Family::Lmir,  Family::Rbot,    Family::Sdbot,   Family::Swizzor,
    Family::Vundo, Family::Zbot,    Family::Zlob,    Family::Benign,
};

const char* to_string(Family family) noexcept;

// Parses a family name (case-sensitive, as printed by to_string); throws
// std::invalid_argument for unknown names.
Family family_from_string(const std::string& name);

inline int family_label(Family family) noexcept { return static_cast<int>(family); }

Family family_from_label(int label);

}  // namespace cfgx
