#include "gnn/trainer.hpp"

#include <stdexcept>

#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace cfgx {

GnnTrainResult train_gnn(GnnClassifier& model, const Corpus& corpus,
                         const std::vector<std::size_t>& train_indices,
                         const GnnTrainConfig& config) {
  if (train_indices.empty()) {
    throw std::invalid_argument("train_gnn: empty training set");
  }
  if (config.batch_size == 0) {
    throw std::invalid_argument("train_gnn: batch_size must be > 0");
  }

  FeatureScaler scaler;
  scaler.fit(corpus, train_indices);
  model.set_scaler(std::move(scaler));

  // Pre-materialize dense adjacencies once (graphs are CPU-scale).
  std::vector<Matrix> adjacencies;
  adjacencies.reserve(train_indices.size());
  std::vector<std::size_t> labels;
  labels.reserve(train_indices.size());
  for (std::size_t index : train_indices) {
    const Acfg& graph = corpus.graph(index);
    adjacencies.push_back(graph.dense_adjacency());
    labels.push_back(static_cast<std::size_t>(graph.label()));
  }

  Adam optimizer(model.parameters(), config.adam);
  Rng shuffle_rng(config.shuffle_seed);
  std::vector<std::size_t> order(train_indices.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  static obs::Counter& epochs_metric =
      obs::MetricsRegistry::global().counter("gnn.epochs");
  static obs::Histogram& epoch_seconds =
      obs::MetricsRegistry::global().histogram("gnn.epoch_seconds");
  static obs::Gauge& last_loss =
      obs::MetricsRegistry::global().gauge("gnn.last_epoch_loss");

  obs::TraceSpan train_span("gnn.train", "train");
  GnnTrainResult result;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    obs::TraceSpan epoch_span("gnn.train.epoch", "train");
    obs::ScopedDurationTimer epoch_timer(epoch_seconds);
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config.batch_size);
      model.zero_grad();
      double batch_loss = 0.0;
      for (std::size_t k = start; k < end; ++k) {
        const std::size_t i = order[k];
        const Matrix logits = model.forward_cached(
            adjacencies[i], corpus.graph(train_indices[i]).features());
        LossResult loss = softmax_cross_entropy(logits, {labels[i]});
        batch_loss += loss.value;
        // Scale so the batch gradient is the mean over batch members.
        loss.grad *= 1.0 / static_cast<double>(end - start);
        model.backward_cached(loss.grad, /*want_adjacency_grad=*/false);
      }
      optimizer.step();
      epoch_loss += batch_loss / static_cast<double>(end - start);
      ++batches;
    }

    epoch_loss /= static_cast<double>(batches);
    result.epoch_losses.push_back(epoch_loss);
    epochs_metric.add();
    last_loss.set(epoch_loss);
    if (config.on_epoch) config.on_epoch(epoch, epoch_loss);
    CFGX_LOG(Debug) << "gnn epoch " << epoch << " loss " << epoch_loss;
  }

  result.final_train_accuracy =
      evaluate_gnn(model, corpus, train_indices).accuracy();
  return result;
}

ConfusionMatrix evaluate_gnn(const GnnClassifier& model, const Corpus& corpus,
                             const std::vector<std::size_t>& indices) {
  ConfusionMatrix confusion(model.config().num_classes);
  for (std::size_t index : indices) {
    const Acfg& graph = corpus.graph(index);
    const Prediction prediction = model.predict(graph);
    confusion.add(static_cast<std::size_t>(graph.label()),
                  prediction.predicted_class);
  }
  return confusion;
}

}  // namespace cfgx
