// Graph Convolutional Network layer (Kipf & Welling style), the building
// block of the paper's embedding component Phi_e (three GCN layers with
// ReLU activations, Section V-A).
//
// Forward: Z = ReLU(A_hat * H * W + b), with A_hat the normalized adjacency
// from graph/ops.hpp.
//
// Two execution paths:
//   * infer(...) const      — cache-free, safe to call concurrently
//   * forward(...)/backward — cached training path; backward can also
//     return dLoss/dA_hat, which GNNExplainer and PGExplainer need to
//     optimize edge masks through the GNN.
//
// Each path accepts A_hat either dense (the reference implementation the
// tests compare against) or in CSR form (the production fast path — CFG
// adjacencies are >95% zeros). The CSR overloads take an optional
// ThreadPool whose workers split the output rows; results are identical to
// the dense path to the last bit for finite inputs.
#pragma once

#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/matrix.hpp"
#include "nn/matrix16.hpp"
#include "nn/sparse.hpp"

namespace cfgx {

class ThreadPool;

class GcnLayer {
 public:
  GcnLayer(std::size_t in_features, std::size_t out_features, Rng& rng,
           std::string name = "gcn");

  std::size_t in_features() const { return weight_.value.rows(); }
  std::size_t out_features() const { return weight_.value.cols(); }

  // Inference precision for the H*W product. Bf16 packs a bf16 copy of the
  // CURRENT weights (re-call after any weight update); Fp64 drops it. The
  // fp64 master weights, the training path (forward/backward) and the
  // A_hat aggregation are unaffected — only the feature transform runs
  // reduced-precision (it dominates the multiply count).
  void set_precision(Precision precision);
  Precision precision() const noexcept { return precision_; }

  // Cache-free inference (dense reference / CSR fast path).
  Matrix infer(const Matrix& a_hat, const Matrix& h) const;
  Matrix infer(const CsrMatrix& a_hat, const Matrix& h,
               ThreadPool* pool = nullptr) const;

  // Destination-passing inference: writes ReLU(A_hat H W + b) into `out`
  // (reshaped, capacity-reusing) with the H*W intermediate held in a
  // Workspace scratch buffer — zero allocations in steady state. `out`
  // must not alias `h`. Bit-identical to the value-returning overloads.
  //
  // `row_live` (optional, length = rows) skips every row i with
  // row_live[i] == 0.0 — the row stays exactly zero instead of carrying
  // ReLU(b). Live rows are unaffected: a masked node's values only reach
  // them through adjacency coefficients that are exactly 0.0, and an
  // accumulator seeded at +0.0 is unchanged by +/-0.0 terms.
  void infer_into(const CsrMatrix& a_hat, const Matrix& h, Matrix& out,
                  ThreadPool* pool = nullptr,
                  const double* row_live = nullptr) const;

  // Cached training forward. The CSR overload caches the sparse adjacency
  // so backward() runs the sparse kernels too.
  Matrix forward(const Matrix& a_hat, const Matrix& h);
  Matrix forward(const CsrMatrix& a_hat, const Matrix& h,
                 ThreadPool* pool = nullptr);

  // Backward from dLoss/dZ. Accumulates dW, db; returns dLoss/dH.
  // When grad_a_hat != nullptr, also accumulates dLoss/dA_hat into it
  // (must be pre-sized [N, N]; always dense — the explainers optimize a
  // dense edge-mask gradient).
  Matrix backward(const Matrix& grad_output, Matrix* grad_a_hat = nullptr);

  std::vector<Parameter*> parameters() { return {&weight_, &bias_}; }
  void zero_grad() {
    weight_.zero_grad();
    bias_.zero_grad();
  }

 private:
  Parameter weight_;
  Parameter bias_;
  Precision precision_ = Precision::Fp64;
  Matrix16 weight_bf16_;  // packed copy of weight_.value when Bf16
  // Caches for backward. Exactly one of cached_a_hat_ / cached_a_csr_ is
  // populated, per the overload forward() was called with.
  Matrix cached_a_hat_;
  CsrMatrix cached_a_csr_;
  bool cached_csr_path_ = false;
  ThreadPool* cached_pool_ = nullptr;
  Matrix cached_h_;
  Matrix cached_hw_;             // H * W
  Matrix cached_preactivation_;  // A_hat * H * W + b
};

}  // namespace cfgx
