// The GNN malware classifier Phi = {Phi_e, Phi_c} of Section V-A.
//
//   Phi_e: feature scaling -> stacked GCN layers (paper: 1024/512/128;
//          default here: 64/48/32, CPU scale) -> node embeddings Z.
//   Phi_c: mean-pool over the graph's (fixed) node count -> dense layer ->
//          class logits over the 12 ACFG families.
//
// Phi_c pools over the ACTIVE nodes (nodes with an incident edge or a
// non-zero feature row): a masked subgraph's prediction is driven by the
// content of its surviving blocks, so Algorithm-2 pruning degrades the
// prediction through information loss, not through dilution toward the
// bias prior (DESIGN.md decision 2).
//
// Thread-safety: the const inference methods (embed, class_logits, predict,
// predict_masked) do not mutate state and may run concurrently. The cached
// training path (forward_cached/backward_cached) is single-threaded; use
// clone() to hand each worker its own instance when explainers need
// gradients in parallel.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dataset/corpus.hpp"
#include "gnn/gcn.hpp"
#include "graph/acfg.hpp"
#include "nn/layers.hpp"
#include "nn/matrix.hpp"

namespace cfgx {

// Phi_c readout family. MeanPool is the default reproduction; SortPool is
// the DGCNN-style readout of MAGIC (Yan et al., DSN'19), the classifier the
// paper actually explains: the top-k nodes by embedding magnitude are
// concatenated into a fixed-size vector before the dense layer. Having both
// lets the ablation bench demonstrate CFGExplainer's model-agnosticism.
enum class ReadoutKind : std::uint8_t { MeanPool = 0, SortPool = 1 };

struct GnnConfig {
  std::size_t feature_dim = kAcfgFeatureCount;
  std::vector<std::size_t> gcn_dims = {64, 48, 32};  // paper: {1024, 512, 128}
  std::size_t num_classes = kFamilyCount;
  ReadoutKind readout = ReadoutKind::MeanPool;
  std::size_t sortpool_k = 16;  // nodes kept by SortPool

  std::size_t embedding_dim() const { return gcn_dims.back(); }
};

struct Prediction {
  std::size_t predicted_class = 0;
  Matrix probabilities;  // [1, num_classes]
  double confidence() const { return probabilities(0, predicted_class); }
};

class ThreadPool;

class GnnClassifier {
 public:
  GnnClassifier(GnnConfig config, Rng& rng);

  const GnnConfig& config() const noexcept { return config_; }

  // Optional thread pool for the sparse/dense kernels inside embed() and
  // the cached training path. Row-partitioned work keeps results identical
  // to the serial run. Not owned; not copied by clone()/save(). The pool
  // may be the same one driving explain_batch — a reentrant parallel_for
  // from a worker runs inline.
  void set_kernel_pool(ThreadPool* pool) noexcept { kernel_pool_ = pool; }
  ThreadPool* kernel_pool() const noexcept { return kernel_pool_; }

  void set_scaler(FeatureScaler scaler) { scaler_ = std::move(scaler); }
  const FeatureScaler& scaler() const noexcept { return scaler_; }

  // Inference precision (DESIGN.md decision 14). Bf16 packs bf16 copies of
  // the GCN and readout weights and routes every inference-path feature
  // transform through the fp32-accumulating bf16 kernels; Fp64 restores the
  // reference path. Training (forward_cached/backward_cached) and
  // checkpoints always use the fp64 master weights; re-apply after updating
  // weights. clone() preserves the setting.
  void set_precision(Precision precision);
  Precision precision() const noexcept { return precision_; }

  // --- inference (const) ---

  // Node embeddings Z from a dense weighted adjacency + RAW features.
  // Applies the scaler when fitted, normalizes the adjacency internally.
  // Rows of inactive (pruned/padded) nodes are zeroed so they contribute
  // nothing downstream.
  Matrix embed(const Matrix& adjacency, const Matrix& raw_features) const;

  // Destination-passing embed for callers that already hold the normalized
  // CSR adjacency and its d^{-1/2} vector (the incremental Algorithm-2
  // masking path rebuilds neither per iteration). Intermediates ping-pong
  // through Workspace scratch, so steady-state calls allocate nothing.
  // `out` must not alias `raw_features`. Bit-identical to embed() given the
  // same A_hat / inv_sqrt.
  void embed_into(const CsrMatrix& a_hat, const std::vector<double>& inv_sqrt,
                  const Matrix& raw_features, Matrix& out) const;

  // Class logits from embeddings: mean over the ACTIVE nodes + dense.
  // `active_count` is the number of active nodes (see
  // count_active_nodes); pass 0 to infer it as the number of non-zero
  // embedding rows (exact whenever embed() produced the matrix).
  Matrix class_logits(const Matrix& embeddings,
                      std::size_t active_count = 0) const;

  Prediction predict(const Acfg& graph) const;

  // Prediction for a masked variant of a graph (explainer evaluation).
  Prediction predict_masked(const Matrix& adjacency,
                            const Matrix& raw_features) const;

  // --- cached training / gradient path ---

  // Forward with caches; input is the dense adjacency + raw features.
  // Returns logits [1, num_classes].
  Matrix forward_cached(const Matrix& adjacency, const Matrix& raw_features);

  struct BackwardResult {
    Matrix grad_adjacency;  // dLoss/dA (raw adjacency), degree held constant
    // dLoss/dX_scaled: gradient w.r.t. the (scaler-transformed) input
    // features — always produced (it falls out of the layer chain). Chain
    // through the scaler via dX_raw = dX_scaled / stddev when needed.
    Matrix grad_scaled_features;
  };

  // Backward from dLoss/dLogits. Accumulates parameter gradients; when
  // want_adjacency_grad is set, also returns dLoss/dA where the
  // normalization coefficients are treated as constants (DESIGN.md
  // decision 4).
  BackwardResult backward_cached(const Matrix& grad_logits,
                                 bool want_adjacency_grad = false);

  std::vector<Parameter*> parameters();
  void zero_grad();

  // Deep copy (weights + scaler); used for per-thread explainer instances.
  GnnClassifier clone() const;

  // Checkpointing: weights + scaler + config dims.
  void save(std::ostream& out) const;
  static GnnClassifier load(std::istream& in);
  void save_file(const std::string& path) const;
  static GnnClassifier load_file(const std::string& path);

 private:
  GnnClassifier() = default;  // for load()/clone()

  Matrix scaled(const Matrix& raw_features) const;
  Matrix pool(const Matrix& embeddings, std::size_t active_count) const;
  // SortPool selection: active node indices ordered by descending embedding
  // row sum (ties by index), truncated to sortpool_k.
  std::vector<std::size_t> sortpool_selection(
      const Matrix& embeddings, const std::vector<char>* active) const;
  Matrix readout_input(const Matrix& embeddings, std::size_t active_count,
                       const std::vector<char>* active,
                       std::vector<std::size_t>* selection_out) const;

  GnnConfig config_;
  FeatureScaler scaler_;
  std::vector<GcnLayer> gcn_layers_;
  std::unique_ptr<Dense> readout_;
  Precision precision_ = Precision::Fp64;
  Matrix16 readout_w16_;  // packed readout weights when Bf16

  ThreadPool* kernel_pool_ = nullptr;

  // Training caches. The adjacency is cached in CSR form: every backward
  // kernel that consumes it is sparse.
  CsrMatrix cached_a_hat_;
  Matrix cached_norm_coeffs_;  // d_i^{-1/2} d_j^{-1/2} factors for dA chain
  Matrix cached_embeddings_;
  std::vector<std::size_t> cached_selection_;  // SortPool permutation
  std::vector<char> cached_active_;
  std::size_t cached_active_count_ = 0;
  std::size_t cached_num_nodes_ = 0;
};

}  // namespace cfgx
