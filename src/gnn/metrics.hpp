// Classification metrics: accuracy, per-class accuracy, confusion matrix,
// and the AUC of an accuracy-vs-subgraph-size curve as defined by the
// paper's Table III (graph size normalized to [0,1], trapezoidal rule).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cfgx {

struct ConfusionMatrix {
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(std::size_t truth, std::size_t predicted);

  std::size_t num_classes() const { return counts_.size(); }
  std::size_t count(std::size_t truth, std::size_t predicted) const;
  std::size_t total() const;

  double accuracy() const;
  double class_accuracy(std::size_t truth) const;  // recall of one class

  std::string to_string(const std::vector<std::string>& class_names = {}) const;

 private:
  std::vector<std::vector<std::size_t>> counts_;
};

// Trapezoidal AUC over (x, y) pairs; x must be strictly increasing. The
// x range is normalized to [0,1] so AUC lands in [0, max(y)] — with
// accuracies in [0,1] this matches the paper's AUC in [0,1].
double curve_auc(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace cfgx
