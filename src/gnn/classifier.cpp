#include "gnn/classifier.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/ops.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "nn/workspace.hpp"

namespace cfgx {
namespace {

constexpr char kCheckpointMagic[] = "CFGXM002";
constexpr std::size_t kMagicLen = 8;

void write_u64(std::ostream& out, std::uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw SerializationError("GnnClassifier: truncated checkpoint");
  return value;
}

}  // namespace

GnnClassifier::GnnClassifier(GnnConfig config, Rng& rng)
    : config_(std::move(config)) {
  if (config_.gcn_dims.empty()) {
    throw std::invalid_argument("GnnClassifier: need at least one GCN layer");
  }
  std::size_t in_dim = config_.feature_dim;
  for (std::size_t i = 0; i < config_.gcn_dims.size(); ++i) {
    gcn_layers_.emplace_back(in_dim, config_.gcn_dims[i], rng,
                             "phi_e.gcn" + std::to_string(i));
    in_dim = config_.gcn_dims[i];
  }
  if (config_.readout == ReadoutKind::SortPool && config_.sortpool_k == 0) {
    throw std::invalid_argument("GnnClassifier: sortpool_k must be > 0");
  }
  const std::size_t readout_in =
      config_.readout == ReadoutKind::SortPool
          ? config_.sortpool_k * config_.embedding_dim()
          : config_.embedding_dim();
  readout_ = std::make_unique<Dense>(readout_in, config_.num_classes, rng,
                                     "phi_c.readout");
}

std::vector<std::size_t> GnnClassifier::sortpool_selection(
    const Matrix& embeddings, const std::vector<char>* active) const {
  std::vector<std::size_t> candidates;
  candidates.reserve(embeddings.rows());
  for (std::size_t i = 0; i < embeddings.rows(); ++i) {
    if (active != nullptr && !(*active)[i]) continue;
    candidates.push_back(i);
  }
  std::vector<double> score(embeddings.rows(), 0.0);
  for (std::size_t i : candidates) {
    for (std::size_t c = 0; c < embeddings.cols(); ++c) {
      score[i] += embeddings(i, c);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](std::size_t a, std::size_t b) {
                     return score[a] > score[b];
                   });
  if (candidates.size() > config_.sortpool_k) {
    candidates.resize(config_.sortpool_k);
  }
  return candidates;
}

Matrix GnnClassifier::readout_input(const Matrix& embeddings,
                                    std::size_t active_count,
                                    const std::vector<char>* active,
                                    std::vector<std::size_t>* selection_out) const {
  if (config_.readout == ReadoutKind::MeanPool) {
    if (selection_out != nullptr) selection_out->clear();
    if (active == nullptr) return pool(embeddings, active_count);
    // Cached path: sum active rows only (inactive rows carry the bias chain).
    Matrix pooled(1, embeddings.cols());
    for (std::size_t i = 0; i < embeddings.rows(); ++i) {
      if (!(*active)[i]) continue;
      for (std::size_t c = 0; c < embeddings.cols(); ++c) {
        pooled(0, c) += embeddings(i, c);
      }
    }
    pooled *= 1.0 / static_cast<double>(std::max<std::size_t>(1, active_count));
    return pooled;
  }
  // SortPool: concatenate the top-k rows into [1, k*f]; zero-pad the tail.
  const auto selection = sortpool_selection(embeddings, active);
  if (selection_out != nullptr) *selection_out = selection;
  const std::size_t f = embeddings.cols();
  Matrix flat(1, config_.sortpool_k * f);
  for (std::size_t slot = 0; slot < selection.size(); ++slot) {
    for (std::size_t c = 0; c < f; ++c) {
      flat(0, slot * f + c) = embeddings(selection[slot], c);
    }
  }
  return flat;
}

Matrix GnnClassifier::scaled(const Matrix& raw_features) const {
  return scaler_.fitted() ? scaler_.transform(raw_features) : raw_features;
}

Matrix GnnClassifier::pool(const Matrix& embeddings,
                           std::size_t active_count) const {
  // Mean over the ACTIVE nodes: a subgraph's readout is driven by the
  // content of its surviving blocks, so masked-subgraph predictions do not
  // collapse toward the bias prior as nodes are pruned (DESIGN.md
  // decision 2).
  Matrix pooled = embeddings.col_sums();
  pooled *= 1.0 / static_cast<double>(std::max<std::size_t>(1, active_count));
  return pooled;
}

Matrix GnnClassifier::embed(const Matrix& adjacency,
                            const Matrix& raw_features) const {
  if (adjacency.rows() != raw_features.rows()) {
    throw std::invalid_argument("GnnClassifier::embed: node count mismatch");
  }
  // Activity (self-loop policy) is judged on the RAW features: a pruned or
  // padded node has an all-zero raw row; scaling happens afterwards.
  // The normalized adjacency is converted to CSR once and reused by every
  // layer: CFG adjacencies are >95% zeros and spmm reproduces the dense
  // matmul exactly (same per-row accumulation order).
  std::vector<double> inv_sqrt;
  const CsrMatrix a_hat =
      normalized_adjacency_csr(adjacency, inv_sqrt, &raw_features);
  Matrix out;
  embed_into(a_hat, inv_sqrt, raw_features, out);
  return out;
}

void GnnClassifier::embed_into(const CsrMatrix& a_hat,
                               const std::vector<double>& inv_sqrt,
                               const Matrix& raw_features, Matrix& out) const {
  Workspace& workspace = Workspace::local();
  Workspace::Lease ping = workspace.acquire(0, 0);
  Workspace::Lease pong = workspace.acquire(0, 0);
  const Matrix* h = &raw_features;
  if (scaler_.fitted()) {
    scaler_.transform_into(raw_features, ping.get());
    h = &ping.get();
  }
  Matrix* scratch = &pong.get();
  Matrix* other = &ping.get();
  // Skip rows of inactive (pruned/isolated) nodes in every layer: their
  // final rows are zeroed below anyway, and live rows only see them
  // through exact-zero adjacency coefficients, so the skip is invisible.
  const double* row_live = inv_sqrt.data();
  for (std::size_t i = 0; i < gcn_layers_.size(); ++i) {
    Matrix& dst = (i + 1 == gcn_layers_.size()) ? out : *scratch;
    gcn_layers_[i].infer_into(a_hat, *h, dst, kernel_pool_, row_live);
    h = &dst;
    std::swap(scratch, other);
  }
  if (gcn_layers_.empty()) out = *h;
  // Inactive nodes would otherwise carry the bias constant ReLU(b) through
  // the stack; zero them so "pruned == padded == absent" holds exactly.
  for (std::size_t i = 0; i < out.rows(); ++i) {
    if (inv_sqrt[i] == 0.0) {
      for (std::size_t c = 0; c < out.cols(); ++c) out(i, c) = 0.0;
    }
  }
}

Matrix GnnClassifier::class_logits(const Matrix& embeddings,
                                   std::size_t active_count) const {
  if (active_count == 0) {
    for (std::size_t i = 0; i < embeddings.rows(); ++i) {
      for (std::size_t c = 0; c < embeddings.cols(); ++c) {
        if (embeddings(i, c) != 0.0) {
          ++active_count;
          break;
        }
      }
    }
  }
  // Cache-free dense readout.
  const Matrix pooled =
      readout_input(embeddings, active_count, nullptr, nullptr);
  Matrix logits = precision_ == Precision::Bf16
                      ? matmul_bf16(pooled, readout_w16_)
                      : matmul(pooled, readout_->weight().value);
  for (std::size_t c = 0; c < logits.cols(); ++c) {
    logits(0, c) += readout_->bias().value(0, c);
  }
  return logits;
}

Prediction GnnClassifier::predict(const Acfg& graph) const {
  // Sparse path: MaskedNormalizedAdjacency(graph) is bit-identical to the
  // dense normalized_adjacency_csr(dense_adjacency(), features()) pipeline
  // (see ops.hpp), and the non-zero inv_sqrt count IS the active-node count
  // under the self-loop policy — so this matches predict_masked(
  // dense_adjacency(), features()) exactly at O(E log E) instead of O(N^2).
  const MaskedNormalizedAdjacency frozen(graph);
  Matrix embeddings;
  embed_into(frozen.a_hat(), frozen.inv_sqrt_degree(), graph.features(),
             embeddings);
  std::size_t active = 0;
  for (double v : frozen.inv_sqrt_degree()) {
    if (v != 0.0) ++active;
  }
  Prediction prediction;
  prediction.probabilities = softmax_rows(class_logits(embeddings, active));
  prediction.predicted_class = argmax_rows(prediction.probabilities)[0];
  return prediction;
}

Prediction GnnClassifier::predict_masked(const Matrix& adjacency,
                                         const Matrix& raw_features) const {
  Prediction prediction;
  prediction.probabilities = softmax_rows(
      class_logits(embed(adjacency, raw_features),
                   count_active_nodes(adjacency, raw_features)));
  prediction.predicted_class = argmax_rows(prediction.probabilities)[0];
  return prediction;
}

Matrix GnnClassifier::forward_cached(const Matrix& adjacency,
                                     const Matrix& raw_features) {
  std::vector<double> inv_sqrt;
  cached_a_hat_ = normalized_adjacency_csr(adjacency, inv_sqrt, &raw_features);
  cached_norm_coeffs_ = Matrix::row_vector(inv_sqrt);
  cached_num_nodes_ = adjacency.rows();
  cached_active_.assign(cached_num_nodes_, 0);
  cached_active_count_ = 0;
  for (std::size_t i = 0; i < cached_num_nodes_; ++i) {
    if (inv_sqrt[i] > 0.0) {
      cached_active_[i] = 1;
      ++cached_active_count_;
    }
  }

  Matrix h = scaled(raw_features);
  for (GcnLayer& layer : gcn_layers_) {
    h = layer.forward(cached_a_hat_, h, kernel_pool_);
  }
  cached_embeddings_ = h;

  // Readout over the active rows only (inactive rows hold the propagated
  // bias constant and must not leak into the readout).
  const Matrix pooled = readout_input(h, cached_active_count_, &cached_active_,
                                      &cached_selection_);
  return readout_->forward(pooled);
}

GnnClassifier::BackwardResult GnnClassifier::backward_cached(
    const Matrix& grad_logits, bool want_adjacency_grad) {
  if (cached_num_nodes_ == 0) {
    throw std::logic_error("GnnClassifier::backward_cached before forward_cached");
  }
  const Matrix grad_pooled = readout_->backward(grad_logits);

  Matrix grad_h(cached_num_nodes_, config_.embedding_dim());
  if (config_.readout == ReadoutKind::MeanPool) {
    // pool backward: every ACTIVE row receives grad_pooled / active_count.
    const double inv_n = 1.0 / static_cast<double>(
                                   std::max<std::size_t>(1, cached_active_count_));
    for (std::size_t r = 0; r < grad_h.rows(); ++r) {
      if (!cached_active_[r]) continue;
      for (std::size_t c = 0; c < grad_h.cols(); ++c) {
        grad_h(r, c) = grad_pooled(0, c) * inv_n;
      }
    }
  } else {
    // SortPool backward: slot i routes to the selected node (the selection
    // permutation is treated as constant, the standard DGCNN convention).
    const std::size_t f = config_.embedding_dim();
    for (std::size_t slot = 0; slot < cached_selection_.size(); ++slot) {
      const std::size_t node = cached_selection_[slot];
      for (std::size_t c = 0; c < f; ++c) {
        grad_h(node, c) = grad_pooled(0, slot * f + c);
      }
    }
  }

  Matrix grad_a_hat;
  if (want_adjacency_grad) {
    grad_a_hat = Matrix(cached_num_nodes_, cached_num_nodes_);
  }
  for (auto it = gcn_layers_.rbegin(); it != gcn_layers_.rend(); ++it) {
    grad_h = it->backward(grad_h, want_adjacency_grad ? &grad_a_hat : nullptr);
  }

  BackwardResult result;
  result.grad_scaled_features = grad_h;  // after the full layer chain
  if (want_adjacency_grad) {
    // Chain through A_hat_ij = c_i c_j (A_ij + A_ji + I_ij) with the
    // normalization coefficients treated as constants:
    //   dL/dA_ij = c_i c_j (G_ij + G_ji).
    result.grad_adjacency = Matrix(cached_num_nodes_, cached_num_nodes_);
    for (std::size_t i = 0; i < cached_num_nodes_; ++i) {
      for (std::size_t j = 0; j < cached_num_nodes_; ++j) {
        const double c = cached_norm_coeffs_(0, i) * cached_norm_coeffs_(0, j);
        result.grad_adjacency(i, j) =
            c * (grad_a_hat(i, j) + grad_a_hat(j, i));
      }
    }
  }
  return result;
}

void GnnClassifier::set_precision(Precision precision) {
  for (GcnLayer& layer : gcn_layers_) layer.set_precision(precision);
  readout_w16_ = precision == Precision::Bf16
                     ? Matrix16::pack(readout_->weight().value)
                     : Matrix16();
  precision_ = precision;
}

std::vector<Parameter*> GnnClassifier::parameters() {
  std::vector<Parameter*> params;
  for (GcnLayer& layer : gcn_layers_) {
    for (Parameter* p : layer.parameters()) params.push_back(p);
  }
  for (Parameter* p : readout_->parameters()) params.push_back(p);
  return params;
}

void GnnClassifier::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

void GnnClassifier::save(std::ostream& out) const {
  out.write(kCheckpointMagic, kMagicLen);
  write_u64(out, config_.feature_dim);
  write_u64(out, config_.gcn_dims.size());
  for (std::size_t dim : config_.gcn_dims) write_u64(out, dim);
  write_u64(out, config_.num_classes);
  write_u64(out, static_cast<std::uint64_t>(config_.readout));
  write_u64(out, config_.sortpool_k);
  write_u64(out, scaler_.fitted() ? 1 : 0);
  if (scaler_.fitted()) write_matrix(out, scaler_.to_matrix());
  auto& self = const_cast<GnnClassifier&>(*this);  // parameters() is non-const
  save_parameters(out, self.parameters());
}

GnnClassifier GnnClassifier::load(std::istream& in) {
  char magic[kMagicLen] = {};
  in.read(magic, kMagicLen);
  if (!in || std::string(magic, kMagicLen) != kCheckpointMagic) {
    throw SerializationError("not a GnnClassifier checkpoint");
  }
  GnnConfig config;
  config.feature_dim = read_u64(in);
  const std::uint64_t layer_count = read_u64(in);
  if (layer_count == 0 || layer_count > 64) {
    throw SerializationError("implausible GCN layer count");
  }
  config.gcn_dims.clear();
  for (std::uint64_t i = 0; i < layer_count; ++i) {
    config.gcn_dims.push_back(read_u64(in));
  }
  config.num_classes = read_u64(in);
  const std::uint64_t readout = read_u64(in);
  if (readout > 1) throw SerializationError("invalid readout kind");
  config.readout = static_cast<ReadoutKind>(readout);
  config.sortpool_k = read_u64(in);

  Rng rng(0);  // weights are immediately overwritten
  GnnClassifier model(config, rng);
  if (read_u64(in) == 1) {
    model.scaler_ = FeatureScaler::from_matrix(read_matrix(in));
  }
  load_parameters(in, model.parameters());
  return model;
}

GnnClassifier GnnClassifier::clone() const {
  std::stringstream buffer;
  save(buffer);
  GnnClassifier copy = load(buffer);
  // Checkpoints carry only the fp64 master weights; re-derive the packed
  // bf16 view so the copy serves at the same precision.
  if (precision_ != Precision::Fp64) copy.set_precision(precision_);
  return copy;
}

void GnnClassifier::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializationError("cannot open '" + path + "' for writing");
  save(out);
}

GnnClassifier GnnClassifier::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open '" + path + "' for reading");
  return load(in);
}

}  // namespace cfgx
