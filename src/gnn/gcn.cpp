#include "gnn/gcn.hpp"

#include "util/thread_pool.hpp"

namespace cfgx {
namespace {

Matrix add_bias_rows(Matrix m, const Matrix& bias) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) += bias(0, c);
  }
  return m;
}

Matrix relu(Matrix m) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m.data()[i] < 0.0) m.data()[i] = 0.0;
  }
  return m;
}

}  // namespace

GcnLayer::GcnLayer(std::size_t in_features, std::size_t out_features, Rng& rng,
                   std::string name)
    : weight_(name + ".W", glorot_uniform(in_features, out_features, rng)),
      bias_(name + ".b", Matrix(1, out_features)) {}

Matrix GcnLayer::infer(const Matrix& a_hat, const Matrix& h) const {
  return relu(add_bias_rows(matmul(a_hat, matmul(h, weight_.value)), bias_.value));
}

Matrix GcnLayer::infer(const CsrMatrix& a_hat, const Matrix& h,
                       ThreadPool* pool) const {
  return relu(add_bias_rows(spmm(a_hat, matmul(h, weight_.value), pool),
                            bias_.value));
}

Matrix GcnLayer::forward(const Matrix& a_hat, const Matrix& h) {
  cached_a_hat_ = a_hat;
  cached_a_csr_ = CsrMatrix();
  cached_csr_path_ = false;
  cached_pool_ = nullptr;
  cached_h_ = h;
  cached_hw_ = matmul(h, weight_.value);
  cached_preactivation_ =
      add_bias_rows(matmul(a_hat, cached_hw_), bias_.value);
  return relu(cached_preactivation_);
}

Matrix GcnLayer::forward(const CsrMatrix& a_hat, const Matrix& h,
                         ThreadPool* pool) {
  cached_a_hat_ = Matrix();
  cached_a_csr_ = a_hat;
  cached_csr_path_ = true;
  cached_pool_ = pool;
  cached_h_ = h;
  cached_hw_ = matmul(h, weight_.value);
  cached_preactivation_ =
      add_bias_rows(spmm(cached_a_csr_, cached_hw_, pool), bias_.value);
  return relu(cached_preactivation_);
}

Matrix GcnLayer::backward(const Matrix& grad_output, Matrix* grad_a_hat) {
  // dP = dZ .* 1[P > 0]
  Matrix grad_pre = grad_output;
  for (std::size_t i = 0; i < grad_pre.size(); ++i) {
    if (cached_preactivation_.data()[i] <= 0.0) grad_pre.data()[i] = 0.0;
  }

  bias_.grad += grad_pre.col_sums();

  // d(HW) = A_hat^T dP;  dW = H^T d(HW);  dH = d(HW) W^T;  dA = dP (HW)^T.
  const Matrix grad_hw =
      cached_csr_path_ ? spmm_transpose_a(cached_a_csr_, grad_pre, cached_pool_)
                       : matmul_transpose_a(cached_a_hat_, grad_pre);
  weight_.grad += matmul_transpose_a(cached_h_, grad_hw);
  if (grad_a_hat != nullptr) {
    *grad_a_hat += matmul_transpose_b(grad_pre, cached_hw_);
  }
  return matmul_transpose_b(grad_hw, weight_.value);
}

}  // namespace cfgx
