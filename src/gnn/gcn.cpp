#include "gnn/gcn.hpp"

#include "nn/workspace.hpp"
#include "util/thread_pool.hpp"

namespace cfgx {
namespace {

void add_bias_rows_inplace(Matrix& m, const Matrix& bias) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) += bias(0, c);
  }
}

Matrix add_bias_rows(Matrix m, const Matrix& bias) {
  add_bias_rows_inplace(m, bias);
  return m;
}

// Note: clamps strictly negative values only — keeps -0.0 and NaN as-is,
// unlike std::max(0.0, x). The layer tests pin this behaviour.
void relu_inplace(Matrix& m) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m.data()[i] < 0.0) m.data()[i] = 0.0;
  }
}

Matrix relu(Matrix m) {
  relu_inplace(m);
  return m;
}

}  // namespace

GcnLayer::GcnLayer(std::size_t in_features, std::size_t out_features, Rng& rng,
                   std::string name)
    : weight_(name + ".W", glorot_uniform(in_features, out_features, rng)),
      bias_(name + ".b", Matrix(1, out_features)) {}

void GcnLayer::set_precision(Precision precision) {
  weight_bf16_ =
      precision == Precision::Bf16 ? Matrix16::pack(weight_.value) : Matrix16();
  precision_ = precision;
}

Matrix GcnLayer::infer(const Matrix& a_hat, const Matrix& h) const {
  Matrix hw = precision_ == Precision::Bf16 ? matmul_bf16(h, weight_bf16_)
                                            : matmul(h, weight_.value);
  return relu(add_bias_rows(matmul(a_hat, hw), bias_.value));
}

Matrix GcnLayer::infer(const CsrMatrix& a_hat, const Matrix& h,
                       ThreadPool* pool) const {
  Matrix out;
  infer_into(a_hat, h, out, pool);
  return out;
}

void GcnLayer::infer_into(const CsrMatrix& a_hat, const Matrix& h, Matrix& out,
                          ThreadPool* pool, const double* row_live) const {
  Workspace::Lease hw = Workspace::local().acquire(h.rows(), out_features());
  if (precision_ == Precision::Bf16) {
    matmul_bf16_live_rows_into(h, weight_bf16_, hw.get(), row_live);
  } else {
    matmul_live_rows_into(h, weight_.value, hw.get(), row_live);
  }
  spmm_live_rows_into(a_hat, hw.get(), out, row_live, pool);
  if (row_live == nullptr) {
    add_bias_rows_inplace(out, bias_.value);
    relu_inplace(out);
    return;
  }
  for (std::size_t r = 0; r < out.rows(); ++r) {
    if (row_live[r] == 0.0) continue;  // masked rows stay exactly zero
    double* row = out.data() + r * out.cols();
    for (std::size_t c = 0; c < out.cols(); ++c) {
      row[c] += bias_.value(0, c);
      if (row[c] < 0.0) row[c] = 0.0;  // same clamp as relu_inplace
    }
  }
}

Matrix GcnLayer::forward(const Matrix& a_hat, const Matrix& h) {
  cached_a_hat_ = a_hat;
  cached_a_csr_ = CsrMatrix();
  cached_csr_path_ = false;
  cached_pool_ = nullptr;
  cached_h_ = h;
  cached_hw_ = matmul(h, weight_.value);
  cached_preactivation_ =
      add_bias_rows(matmul(a_hat, cached_hw_), bias_.value);
  return relu(cached_preactivation_);
}

Matrix GcnLayer::forward(const CsrMatrix& a_hat, const Matrix& h,
                         ThreadPool* pool) {
  cached_a_hat_ = Matrix();
  cached_a_csr_ = a_hat;
  cached_csr_path_ = true;
  cached_pool_ = pool;
  cached_h_ = h;
  matmul_into(h, weight_.value, cached_hw_);
  spmm_into(cached_a_csr_, cached_hw_, cached_preactivation_, pool);
  add_bias_rows_inplace(cached_preactivation_, bias_.value);
  return relu(cached_preactivation_);
}

Matrix GcnLayer::backward(const Matrix& grad_output, Matrix* grad_a_hat) {
  // dP = dZ .* 1[P > 0]
  Matrix grad_pre = grad_output;
  for (std::size_t i = 0; i < grad_pre.size(); ++i) {
    if (cached_preactivation_.data()[i] <= 0.0) grad_pre.data()[i] = 0.0;
  }

  bias_.grad += grad_pre.col_sums();

  // d(HW) = A_hat^T dP;  dW = H^T d(HW);  dH = d(HW) W^T;  dA = dP (HW)^T.
  // Gradients accumulate (+=) into Parameter::grad, so products that feed an
  // accumulation are computed into workspace scratch first.
  Workspace& workspace = Workspace::local();
  Workspace::Lease grad_hw = workspace.acquire(0, 0);
  if (cached_csr_path_) {
    spmm_transpose_a_into(cached_a_csr_, grad_pre, grad_hw.get(), cached_pool_);
  } else {
    matmul_transpose_a_into(cached_a_hat_, grad_pre, grad_hw.get());
  }
  Workspace::Lease scratch = workspace.acquire(0, 0);
  matmul_transpose_a_into(cached_h_, grad_hw.get(), scratch.get());
  weight_.grad += scratch.get();
  if (grad_a_hat != nullptr) {
    matmul_transpose_b_into(grad_pre, cached_hw_, scratch.get());
    *grad_a_hat += scratch.get();
  }
  return matmul_transpose_b(grad_hw.get(), weight_.value);
}

}  // namespace cfgx
