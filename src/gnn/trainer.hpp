// Training loop for the GNN classifier: mini-batch Adam over softmax
// cross-entropy, with per-graph caching of dense adjacencies so the
// quadratic normalization cost is paid once per graph, not once per epoch.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dataset/corpus.hpp"
#include "gnn/classifier.hpp"
#include "gnn/metrics.hpp"
#include "nn/optimizer.hpp"

namespace cfgx {

struct GnnTrainConfig {
  std::size_t epochs = 40;
  std::size_t batch_size = 16;
  AdamConfig adam{.learning_rate = 5e-3};
  std::uint64_t shuffle_seed = 7;
  // Called after each epoch with (epoch, mean training loss).
  std::function<void(std::size_t, double)> on_epoch;
};

struct GnnTrainResult {
  std::vector<double> epoch_losses;
  double final_train_accuracy = 0.0;
};

// Fits the scaler on the train indices, then trains in place.
GnnTrainResult train_gnn(GnnClassifier& model, const Corpus& corpus,
                         const std::vector<std::size_t>& train_indices,
                         const GnnTrainConfig& config = {});

// Accuracy + confusion of `model` over the given corpus indices, using the
// full (unmasked) graphs.
ConfusionMatrix evaluate_gnn(const GnnClassifier& model, const Corpus& corpus,
                             const std::vector<std::size_t>& indices);

}  // namespace cfgx
