#include "gnn/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace cfgx {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : counts_(num_classes, std::vector<std::size_t>(num_classes, 0)) {
  if (num_classes == 0) {
    throw std::invalid_argument("ConfusionMatrix: num_classes must be > 0");
  }
}

void ConfusionMatrix::add(std::size_t truth, std::size_t predicted) {
  if (truth >= counts_.size() || predicted >= counts_.size()) {
    throw std::out_of_range("ConfusionMatrix::add: class out of range");
  }
  ++counts_[truth][predicted];
}

std::size_t ConfusionMatrix::count(std::size_t truth, std::size_t predicted) const {
  return counts_.at(truth).at(predicted);
}

std::size_t ConfusionMatrix::total() const {
  std::size_t total = 0;
  for (const auto& row : counts_) {
    for (std::size_t c : row) total += c;
  }
  return total;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t all = total();
  if (all == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t k = 0; k < counts_.size(); ++k) correct += counts_[k][k];
  return static_cast<double>(correct) / static_cast<double>(all);
}

double ConfusionMatrix::class_accuracy(std::size_t truth) const {
  const auto& row = counts_.at(truth);
  std::size_t total = 0;
  for (std::size_t c : row) total += c;
  if (total == 0) return 0.0;
  return static_cast<double>(row[truth]) / static_cast<double>(total);
}

std::string ConfusionMatrix::to_string(
    const std::vector<std::string>& class_names) const {
  std::ostringstream out;
  for (std::size_t truth = 0; truth < counts_.size(); ++truth) {
    if (truth < class_names.size()) {
      out << class_names[truth] << ": ";
    } else {
      out << "class " << truth << ": ";
    }
    for (std::size_t pred = 0; pred < counts_.size(); ++pred) {
      out << counts_[truth][pred] << (pred + 1 < counts_.size() ? " " : "");
    }
    out << '\n';
  }
  return out.str();
}

double curve_auc(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("curve_auc: need >= 2 aligned points");
  }
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] <= x[i - 1]) {
      throw std::invalid_argument("curve_auc: x must be strictly increasing");
    }
  }
  const double span = x.back() - x.front();
  double auc = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    auc += 0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]);
  }
  return auc / span;
}

}  // namespace cfgx
