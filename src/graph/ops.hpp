// Graph-matrix operations shared by the GNN and every explainer:
// adjacency normalization, the node-masking semantics of the paper's
// Algorithm 2, and subgraph extraction.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/acfg.hpp"
#include "nn/matrix.hpp"
#include "nn/sparse.hpp"

namespace cfgx {

// GCN propagation matrix: A_hat = D^{-1/2} (S + I) D^{-1/2} where
// S = A + A^T symmetrizes the directed weighted adjacency (call edges keep
// their weight 2) and D is the degree of (S + I).
//
// Self-loop policy ("pruned == padded", DESIGN.md decision 3): a node
// receives its self-loop when it is *active* — it has an incident edge or,
// when `features` is supplied, a non-zero feature row. A pruned or padded
// node (zero adjacency row+column AND zero features) gets no self-loop and
// contributes nothing; a surviving node whose neighbours were all pruned
// keeps its self-loop, so its block features still reach the readout —
// matching the paper's fixed-N padded GCN, where every real node carries a
// self-loop even if the explainer disconnected it.
Matrix normalized_adjacency(const Matrix& adjacency,
                            const Matrix* features = nullptr);

// As above, but also exports the per-node d^{-1/2} factors (zero for
// inactive nodes). The classifier's adjacency-gradient chain needs them.
Matrix normalized_adjacency(const Matrix& adjacency,
                            std::vector<double>& inv_sqrt_degree,
                            const Matrix* features = nullptr);

// CSR form of the normalized adjacency, for the sparse GCN hot path. The
// stored values are bit-identical to the dense normalized_adjacency (same
// computation, structural zeros dropped), so spmm(csr, H) reproduces
// matmul(a_hat, H) exactly.
CsrMatrix normalized_adjacency_csr(const Matrix& adjacency,
                                   const Matrix* features = nullptr);
CsrMatrix normalized_adjacency_csr(const Matrix& adjacency,
                                   std::vector<double>& inv_sqrt_degree,
                                   const Matrix* features = nullptr);

// Incrementally maskable normalized adjacency for the Algorithm-2 pruning
// loop. Construction is O(N^2) once (it mirrors normalized_adjacency
// exactly); each prune() + refresh() then costs O(edges incident to the
// touched nodes) instead of re-densifying and re-normalizing the whole
// matrix per iteration.
//
// The CSR structure is frozen at construction: the non-zeros of the
// symmetrized adjacency plus the full diagonal (the self-loop slot).
// Pruning zeroes *values* in place — structural entries holding 0.0
// contribute nothing against finite operands, so spmm over this matrix is
// bit-identical to spmm over the freshly-built CSR of the masked dense
// graph (see the structural-zero discussion in nn/sparse.hpp).
//
// Bit-identity with the dense reference is maintained by recomputation,
// never by algebraic updates: degrees of touched nodes are RE-SUMMED over
// their row in column order (FP addition is not invertible, so subtracting
// a pruned edge's weight would drift), the self-loop enters the sum as the
// single add `s_ii + 1.0` the dense path performs, and every normalized
// value uses the dense association v = s * (c_i * c_j). Requires
// non-negative edge weights (true for ACFGs; needed so zero entries can be
// skipped in degree sums without disturbing signed-zero accumulation).
class MaskedNormalizedAdjacency {
 public:
  // `features` participates in the activity test (self-loop policy above),
  // exactly as normalized_adjacency(adjacency, &features).
  MaskedNormalizedAdjacency(const Matrix& adjacency, const Matrix& features);

  // O(E log E) construction straight from the edge list, bit-identical to
  // MaskedNormalizedAdjacency(graph.dense_adjacency(), graph.features()):
  // symmetrized values use the dense operand order A(i,j) + A(j,i) (with
  // the same call-dominates-flow max rule), and degree sums walk the
  // structural non-zeros in ascending column order — exact versus the
  // dense full-row sum because every skipped entry is a true zero and all
  // weights are non-negative. This is what makes paper-scale graphs
  // (N = 7352) affordable: no N x N densification on the explain path.
  explicit MaskedNormalizedAdjacency(const Acfg& graph);

  // Marks `node` pruned: zeroes its symmetrized edge weights (both
  // orientations) and its feature-activity bit, and queues the node and
  // its structural neighbours for renormalization. No-op if already pruned.
  // Call refresh() before reading a_hat()/inv_sqrt_degree().
  void prune(std::uint32_t node);

  // Recomputes activity, degree, d^{-1/2} and normalized values for every
  // node touched since the last refresh. Cost tracks surviving edges.
  void refresh();

  const CsrMatrix& a_hat() const noexcept { return a_hat_; }
  const std::vector<double>& inv_sqrt_degree() const noexcept {
    return inv_sqrt_;
  }
  bool alive(std::uint32_t node) const { return alive_.at(node) != 0; }
  std::size_t num_nodes() const noexcept { return alive_.size(); }
  // Nodes queued for the next refresh() (exposed for tests/metrics).
  std::size_t pending_dirty() const noexcept { return dirty_.size(); }

 private:
  void mark_dirty(std::uint32_t node);
  // Shared ctor tail: expects s_edge_, active_, feature_active_ filled for
  // the structure described by (row_ptr, col_idx); computes degrees,
  // d^{-1/2}, normalized values, mirror/diagonal indices and a_hat_ with
  // the exact dense operation order.
  void init_from_structure(std::size_t n, std::vector<std::size_t> row_ptr,
                           std::vector<std::uint32_t> col_idx);

  CsrMatrix a_hat_;
  // Symmetrized weights A_ij + A_ji parallel to a_hat_'s values; the
  // diagonal slot stores 2*A_ii WITHOUT the self-loop (activity decides the
  // +1.0 at refresh time). Zeroed, never rebuilt, as nodes are pruned.
  std::vector<double> s_edge_;
  std::vector<std::size_t> mirror_;    // index of the transposed entry
  std::vector<std::size_t> diag_pos_;  // index of (i, i) in row i
  std::vector<char> alive_;
  std::vector<char> feature_active_;  // non-zero feature row AND alive
  std::vector<char> active_;          // self-loop policy flag
  std::vector<double> degree_;
  std::vector<double> inv_sqrt_;
  std::vector<std::uint32_t> dirty_;
  std::vector<char> is_dirty_;
};

// Number of *active* nodes under the self-loop policy above: nodes with an
// incident edge or a non-zero feature row. Pruned and padded nodes are
// inactive. The classifier's readout pools over this count.
std::size_t count_active_nodes(const Matrix& adjacency, const Matrix& features);

// Edge-list form of the same count (O(N + E), no densification).
std::size_t count_active_nodes(const Acfg& graph);

// Batched normalized inputs for K graphs, ready for one shared forward
// pass: the per-graph normalized adjacencies concatenated block-diagonally
// (BatchedCsr), the RAW feature rows stacked in the same row order, the
// d^{-1/2} factors concatenated, and the per-graph active-node counts for
// the readout. embed_into over (a_hat.matrix(), inv_sqrt_degree, features)
// computes all K graphs' embeddings at once, bit-identically to K separate
// calls (see the bit-identity argument on BatchedCsr); slicing row range
// a_hat.range(k) out of the result recovers graph k's embeddings exactly.
struct GraphBatch {
  BatchedCsr a_hat;
  Matrix features;                         // (sum N_k) x feature_count, raw
  std::vector<double> inv_sqrt_degree;     // size sum N_k; 0 for inactive
  std::vector<std::size_t> active_counts;  // per graph, for class_logits

  std::size_t num_graphs() const noexcept { return a_hat.num_blocks(); }
  const BatchedCsr::Range& range(std::size_t k) const { return a_hat.range(k); }
};

// Builds a GraphBatch from K graphs (normalizes each adjacency with the
// feature-aware self-loop policy). Graphs must share a feature_count;
// throws std::invalid_argument on a mismatch or a null pointer. K = 0
// yields an empty batch.
GraphBatch batch_normalized_graphs(const std::vector<const Acfg*>& graphs);

// Zeroes row + column `node` of the adjacency and the node's feature row
// (Algorithm 2 lines 17-18, plus the feature zeroing of DESIGN decision 3).
void mask_node(Matrix& adjacency, Matrix& features, std::uint32_t node);

// Returns a copy of (A, X) with every node NOT in `kept` masked out.
// Shapes are preserved (masked, not compacted), matching the paper's fixed
// input-size evaluation of subgraphs.
struct MaskedGraph {
  Matrix adjacency;
  Matrix features;
};
MaskedGraph keep_only(const Matrix& adjacency, const Matrix& features,
                      const std::vector<std::uint32_t>& kept);

// Edge-list counterpart of keep_only: same node count, only edges with
// BOTH endpoints kept (input order preserved), feature rows of dropped
// nodes zeroed, label/family carried over. dense_adjacency() of the result
// equals keep_only(graph.dense_adjacency(), ...).adjacency entry for
// entry, so predictions on it are bit-identical to the dense masked path —
// at O(N·F + E) instead of O(N^2). Throws on an out-of-range kept id.
Acfg masked_subgraph(const Acfg& graph, const std::vector<std::uint32_t>& kept);

// True when row `node` and column `node` of `adjacency` are entirely zero.
bool node_is_masked(const Matrix& adjacency, std::uint32_t node);

// Given node scores (higher = more important) over `num_nodes` real nodes,
// returns the indices of the `k` top-scoring nodes (ties broken by lower
// index for determinism).
std::vector<std::uint32_t> top_k_nodes(const std::vector<double>& scores,
                                       std::size_t k);

// ceil(fraction * num_nodes), clamped to [1, num_nodes] for num_nodes > 0.
std::size_t nodes_for_fraction(std::uint32_t num_nodes, double fraction);

}  // namespace cfgx
