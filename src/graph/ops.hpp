// Graph-matrix operations shared by the GNN and every explainer:
// adjacency normalization, the node-masking semantics of the paper's
// Algorithm 2, and subgraph extraction.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/acfg.hpp"
#include "nn/matrix.hpp"
#include "nn/sparse.hpp"

namespace cfgx {

// GCN propagation matrix: A_hat = D^{-1/2} (S + I) D^{-1/2} where
// S = A + A^T symmetrizes the directed weighted adjacency (call edges keep
// their weight 2) and D is the degree of (S + I).
//
// Self-loop policy ("pruned == padded", DESIGN.md decision 3): a node
// receives its self-loop when it is *active* — it has an incident edge or,
// when `features` is supplied, a non-zero feature row. A pruned or padded
// node (zero adjacency row+column AND zero features) gets no self-loop and
// contributes nothing; a surviving node whose neighbours were all pruned
// keeps its self-loop, so its block features still reach the readout —
// matching the paper's fixed-N padded GCN, where every real node carries a
// self-loop even if the explainer disconnected it.
Matrix normalized_adjacency(const Matrix& adjacency,
                            const Matrix* features = nullptr);

// As above, but also exports the per-node d^{-1/2} factors (zero for
// inactive nodes). The classifier's adjacency-gradient chain needs them.
Matrix normalized_adjacency(const Matrix& adjacency,
                            std::vector<double>& inv_sqrt_degree,
                            const Matrix* features = nullptr);

// CSR form of the normalized adjacency, for the sparse GCN hot path. The
// stored values are bit-identical to the dense normalized_adjacency (same
// computation, structural zeros dropped), so spmm(csr, H) reproduces
// matmul(a_hat, H) exactly.
CsrMatrix normalized_adjacency_csr(const Matrix& adjacency,
                                   const Matrix* features = nullptr);
CsrMatrix normalized_adjacency_csr(const Matrix& adjacency,
                                   std::vector<double>& inv_sqrt_degree,
                                   const Matrix* features = nullptr);

// Number of *active* nodes under the self-loop policy above: nodes with an
// incident edge or a non-zero feature row. Pruned and padded nodes are
// inactive. The classifier's readout pools over this count.
std::size_t count_active_nodes(const Matrix& adjacency, const Matrix& features);

// Zeroes row + column `node` of the adjacency and the node's feature row
// (Algorithm 2 lines 17-18, plus the feature zeroing of DESIGN decision 3).
void mask_node(Matrix& adjacency, Matrix& features, std::uint32_t node);

// Returns a copy of (A, X) with every node NOT in `kept` masked out.
// Shapes are preserved (masked, not compacted), matching the paper's fixed
// input-size evaluation of subgraphs.
struct MaskedGraph {
  Matrix adjacency;
  Matrix features;
};
MaskedGraph keep_only(const Matrix& adjacency, const Matrix& features,
                      const std::vector<std::uint32_t>& kept);

// True when row `node` and column `node` of `adjacency` are entirely zero.
bool node_is_masked(const Matrix& adjacency, std::uint32_t node);

// Given node scores (higher = more important) over `num_nodes` real nodes,
// returns the indices of the `k` top-scoring nodes (ties broken by lower
// index for determinism).
std::vector<std::uint32_t> top_k_nodes(const std::vector<double>& scores,
                                       std::size_t k);

// ceil(fraction * num_nodes), clamped to [1, num_nodes] for num_nodes > 0.
std::size_t nodes_for_fraction(std::uint32_t num_nodes, double fraction);

}  // namespace cfgx
