#include "graph/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

namespace cfgx {
namespace {

constexpr char kGraphMagic[] = "CFGXG001";
constexpr std::size_t kMagicLen = 8;
constexpr std::uint32_t kMaxNodes = 1u << 22;
constexpr std::uint64_t kMaxGraphs = 1u << 20;

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw SerializationError("unexpected end of stream reading graph field");
  return value;
}

// Declared-count guard: throws when a seekable stream demonstrably holds
// fewer than `needed` bytes (corrupted count headers otherwise trigger a
// huge reserve/resize before any read fails).
void require_bytes(std::istream& in, std::uint64_t needed, const char* what) {
  const auto remaining = stream_bytes_remaining(in);
  if (remaining && *remaining < needed) {
    throw SerializationError(std::string(what) +
                             " exceeds the bytes remaining in the stream");
  }
}

// On-wire sizes used by the count guards.
constexpr std::uint64_t kEdgeBytes = 9;    // u32 src + u32 dst + u8 kind
constexpr std::uint64_t kMinGraphBytes =   // empty graph, empty family
    4 + 4 + 16 + 4 + 8 + 4;

}  // namespace

void write_acfg(std::ostream& out, const Acfg& graph) {
  write_pod<std::uint32_t>(out, graph.num_nodes());
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    write_pod<std::uint32_t>(out, e.src);
    write_pod<std::uint32_t>(out, e.dst);
    write_pod<std::uint8_t>(out, static_cast<std::uint8_t>(e.kind));
  }
  write_matrix(out, graph.features());
  write_pod<std::int32_t>(out, graph.label());
  write_string(out, graph.family());
  write_pod<std::uint32_t>(out,
                           static_cast<std::uint32_t>(graph.planted_nodes().size()));
  for (std::uint32_t node : graph.planted_nodes()) write_pod(out, node);
}

Acfg read_acfg(std::istream& in) try {
  const auto num_nodes = read_pod<std::uint32_t>(in);
  if (num_nodes > kMaxNodes) {
    throw SerializationError("graph node count implausibly large");
  }
  const auto num_edges = read_pod<std::uint32_t>(in);
  if (num_edges > kMaxNodes * 8u) {
    throw SerializationError("graph edge count implausibly large");
  }
  require_bytes(in, std::uint64_t{num_edges} * kEdgeBytes, "graph edge list");
  require_bytes(in, std::uint64_t{num_nodes} * kAcfgFeatureCount * sizeof(double),
                "graph feature matrix");

  Acfg graph(num_nodes, kAcfgFeatureCount);
  for (std::uint32_t i = 0; i < num_edges; ++i) {
    const auto src = read_pod<std::uint32_t>(in);
    const auto dst = read_pod<std::uint32_t>(in);
    const auto kind = read_pod<std::uint8_t>(in);
    if (kind != static_cast<std::uint8_t>(EdgeKind::Flow) &&
        kind != static_cast<std::uint8_t>(EdgeKind::Call)) {
      throw SerializationError("invalid edge kind in graph");
    }
    if (src >= num_nodes || dst >= num_nodes) {
      throw SerializationError("edge endpoint out of range in graph");
    }
    graph.add_edge(src, dst, static_cast<EdgeKind>(kind));
  }

  Matrix features = read_matrix(in);
  if (features.rows() != num_nodes) {
    throw SerializationError("feature matrix row count != node count");
  }
  graph.features() = std::move(features);

  graph.set_label(read_pod<std::int32_t>(in));
  graph.set_family(read_string(in));

  const auto plant_count = read_pod<std::uint32_t>(in);
  if (plant_count > num_nodes) {
    throw SerializationError("plant count exceeds node count");
  }
  for (std::uint32_t i = 0; i < plant_count; ++i) {
    graph.mark_planted(read_pod<std::uint32_t>(in));
  }
  graph.validate();
  return graph;
} catch (const SerializationError&) {
  throw;
} catch (const std::exception& e) {
  // Graph-construction rejections (duplicate edges, out-of-range plants,
  // broken invariants) surface as std::invalid_argument / std::logic_error;
  // a malformed byte stream is a serialization problem, so callers see one
  // exception type regardless of which layer rejected the input.
  throw SerializationError(std::string("invalid graph in archive: ") + e.what());
}

void write_acfg_collection(std::ostream& out, const std::vector<Acfg>& graphs) {
  out.write(kGraphMagic, kMagicLen);
  write_pod<std::uint64_t>(out, graphs.size());
  for (const Acfg& graph : graphs) write_acfg(out, graph);
  if (!out) throw SerializationError("write failure while saving graphs");
}

std::vector<Acfg> read_acfg_collection(std::istream& in) {
  char magic[kMagicLen] = {};
  in.read(magic, kMagicLen);
  if (!in || std::string(magic, kMagicLen) != kGraphMagic) {
    throw SerializationError("bad magic: not a CFGX graph archive");
  }
  const auto count = read_pod<std::uint64_t>(in);
  if (count > kMaxGraphs) throw SerializationError("graph count implausibly large");
  require_bytes(in, count * kMinGraphBytes, "graph collection");
  std::vector<Acfg> graphs;
  graphs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) graphs.push_back(read_acfg(in));
  return graphs;
}

void save_acfg_collection_file(const std::string& path,
                               const std::vector<Acfg>& graphs) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializationError("cannot open '" + path + "' for writing");
  write_acfg_collection(out, graphs);
}

std::vector<Acfg> load_acfg_collection_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open '" + path + "' for reading");
  return read_acfg_collection(in);
}

}  // namespace cfgx
