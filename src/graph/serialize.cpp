#include "graph/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

namespace cfgx {
namespace {

constexpr char kGraphMagic[] = "CFGXG001";
constexpr std::size_t kMagicLen = 8;
constexpr std::uint32_t kMaxNodes = 1u << 22;
constexpr std::uint64_t kMaxGraphs = 1u << 20;

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw SerializationError("unexpected end of stream reading graph field");
  return value;
}

}  // namespace

void write_acfg(std::ostream& out, const Acfg& graph) {
  write_pod<std::uint32_t>(out, graph.num_nodes());
  write_pod<std::uint32_t>(out, static_cast<std::uint32_t>(graph.num_edges()));
  for (const Edge& e : graph.edges()) {
    write_pod<std::uint32_t>(out, e.src);
    write_pod<std::uint32_t>(out, e.dst);
    write_pod<std::uint8_t>(out, static_cast<std::uint8_t>(e.kind));
  }
  write_matrix(out, graph.features());
  write_pod<std::int32_t>(out, graph.label());
  write_string(out, graph.family());
  write_pod<std::uint32_t>(out,
                           static_cast<std::uint32_t>(graph.planted_nodes().size()));
  for (std::uint32_t node : graph.planted_nodes()) write_pod(out, node);
}

Acfg read_acfg(std::istream& in) {
  const auto num_nodes = read_pod<std::uint32_t>(in);
  if (num_nodes > kMaxNodes) {
    throw SerializationError("graph node count implausibly large");
  }
  const auto num_edges = read_pod<std::uint32_t>(in);
  if (num_edges > kMaxNodes * 8u) {
    throw SerializationError("graph edge count implausibly large");
  }

  Acfg graph(num_nodes, kAcfgFeatureCount);
  for (std::uint32_t i = 0; i < num_edges; ++i) {
    const auto src = read_pod<std::uint32_t>(in);
    const auto dst = read_pod<std::uint32_t>(in);
    const auto kind = read_pod<std::uint8_t>(in);
    if (kind != static_cast<std::uint8_t>(EdgeKind::Flow) &&
        kind != static_cast<std::uint8_t>(EdgeKind::Call)) {
      throw SerializationError("invalid edge kind in graph");
    }
    if (src >= num_nodes || dst >= num_nodes) {
      throw SerializationError("edge endpoint out of range in graph");
    }
    graph.add_edge(src, dst, static_cast<EdgeKind>(kind));
  }

  Matrix features = read_matrix(in);
  if (features.rows() != num_nodes) {
    throw SerializationError("feature matrix row count != node count");
  }
  graph.features() = std::move(features);

  graph.set_label(read_pod<std::int32_t>(in));
  graph.set_family(read_string(in));

  const auto plant_count = read_pod<std::uint32_t>(in);
  if (plant_count > num_nodes) {
    throw SerializationError("plant count exceeds node count");
  }
  for (std::uint32_t i = 0; i < plant_count; ++i) {
    graph.mark_planted(read_pod<std::uint32_t>(in));
  }
  graph.validate();
  return graph;
}

void write_acfg_collection(std::ostream& out, const std::vector<Acfg>& graphs) {
  out.write(kGraphMagic, kMagicLen);
  write_pod<std::uint64_t>(out, graphs.size());
  for (const Acfg& graph : graphs) write_acfg(out, graph);
  if (!out) throw SerializationError("write failure while saving graphs");
}

std::vector<Acfg> read_acfg_collection(std::istream& in) {
  char magic[kMagicLen] = {};
  in.read(magic, kMagicLen);
  if (!in || std::string(magic, kMagicLen) != kGraphMagic) {
    throw SerializationError("bad magic: not a CFGX graph archive");
  }
  const auto count = read_pod<std::uint64_t>(in);
  if (count > kMaxGraphs) throw SerializationError("graph count implausibly large");
  std::vector<Acfg> graphs;
  graphs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) graphs.push_back(read_acfg(in));
  return graphs;
}

void save_acfg_collection_file(const std::string& path,
                               const std::vector<Acfg>& graphs) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SerializationError("cannot open '" + path + "' for writing");
  write_acfg_collection(out, graphs);
}

std::vector<Acfg> load_acfg_collection_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializationError("cannot open '" + path + "' for reading");
  return read_acfg_collection(in);
}

}  // namespace cfgx
