#include "graph/acfg.hpp"

#include <algorithm>
#include <stdexcept>

namespace cfgx {

Acfg::Acfg(std::uint32_t num_nodes, std::size_t feature_count)
    : num_nodes_(num_nodes), features_(num_nodes, feature_count) {}

void Acfg::add_edge(std::uint32_t src, std::uint32_t dst, EdgeKind kind) {
  if (src >= num_nodes_ || dst >= num_nodes_) {
    throw std::out_of_range("Acfg::add_edge: endpoint out of range");
  }
  for (const Edge& e : edges_) {
    if (e.src == src && e.dst == dst && e.kind == kind) {
      throw std::invalid_argument("Acfg::add_edge: duplicate edge");
    }
  }
  edges_.push_back(Edge{src, dst, kind});
}

void Acfg::set_edges(std::vector<Edge> edges) {
  for (const Edge& e : edges) {
    if (e.src >= num_nodes_ || e.dst >= num_nodes_) {
      throw std::out_of_range("Acfg::set_edges: endpoint out of range");
    }
  }
  std::vector<Edge> sorted = edges;
  std::sort(sorted.begin(), sorted.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("Acfg::set_edges: duplicate edge");
  }
  edges_ = std::move(edges);
}

bool Acfg::has_edge(std::uint32_t src, std::uint32_t dst) const noexcept {
  return std::any_of(edges_.begin(), edges_.end(), [&](const Edge& e) {
    return e.src == src && e.dst == dst;
  });
}

void Acfg::mark_planted(std::uint32_t node) {
  if (node >= num_nodes_) {
    throw std::out_of_range("Acfg::mark_planted: node out of range");
  }
  if (std::find(planted_nodes_.begin(), planted_nodes_.end(), node) ==
      planted_nodes_.end()) {
    planted_nodes_.push_back(node);
  }
}

Matrix Acfg::dense_adjacency() const {
  Matrix a(num_nodes_, num_nodes_);
  for (const Edge& e : edges_) {
    // A call edge dominates a coincident flow edge, matching the paper's
    // single-valued A[i][j] in {0,1,2}.
    a(e.src, e.dst) = std::max(a(e.src, e.dst), e.weight());
  }
  return a;
}

std::vector<std::uint32_t> Acfg::out_degrees() const {
  std::vector<std::uint32_t> degrees(num_nodes_, 0);
  for (const Edge& e : edges_) ++degrees[e.src];
  return degrees;
}

std::vector<std::uint32_t> Acfg::in_degrees() const {
  std::vector<std::uint32_t> degrees(num_nodes_, 0);
  for (const Edge& e : edges_) ++degrees[e.dst];
  return degrees;
}

void Acfg::validate() const {
  if (features_.rows() != num_nodes_) {
    throw std::logic_error("Acfg: feature row count != node count");
  }
  for (const Edge& e : edges_) {
    if (e.src >= num_nodes_ || e.dst >= num_nodes_) {
      throw std::logic_error("Acfg: edge endpoint out of range");
    }
  }
  for (std::uint32_t node : planted_nodes_) {
    if (node >= num_nodes_) {
      throw std::logic_error("Acfg: planted node out of range");
    }
  }
}

GraphStats compute_stats(const Acfg& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  for (const Edge& e : graph.edges()) {
    if (e.kind == EdgeKind::Call) ++stats.num_call_edges;
  }
  const auto out = graph.out_degrees();
  const auto in = graph.in_degrees();
  double total = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    total += out[i];
    stats.max_out_degree = std::max(stats.max_out_degree, out[i]);
    if (out[i] == 0 && in[i] == 0) ++stats.isolated_nodes;
  }
  stats.mean_out_degree =
      stats.num_nodes == 0 ? 0.0 : total / static_cast<double>(stats.num_nodes);
  return stats;
}

}  // namespace cfgx
