#include "graph/reduce.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace cfgx {
namespace {

// Table-I feature indices (mirrors isa/features.hpp AcfgFeature; the graph
// layer cannot include the isa layer, and the indices are frozen by the
// paper's Table I).
constexpr std::size_t kNumericConstants = 0;
constexpr std::size_t kStringConstants = 1;
constexpr std::size_t kCallInstructions = 3;
constexpr std::size_t kArithmeticInstructions = 4;
constexpr std::size_t kCompareInstructions = 5;
constexpr std::size_t kTerminationInstructions = 7;
constexpr std::size_t kDataDeclInstructions = 8;
constexpr std::size_t kTotalInstructions = 9;
constexpr std::size_t kOffspring = 10;

}  // namespace

FeatureMergeRules default_acfg_merge_rules() {
  FeatureMergeRules rules(kAcfgFeatureCount, MergeRule::Sum);
  rules[kOffspring] = MergeRule::Max;
  return rules;
}

std::vector<double> NodeProjection::project_scores(
    const std::vector<double>& reduced_scores) const {
  if (reduced_scores.size() != reduced_nodes()) {
    throw std::invalid_argument(
        "NodeProjection::project_scores: score count != reduced node count");
  }
  std::vector<double> out(original_nodes(), 0.0);
  for (std::size_t s = 0; s < members.size(); ++s) {
    for (std::size_t i = 0; i < members[s].size(); ++i) {
      out[members[s][i]] = reduced_scores[s] * weights[s][i];
    }
  }
  return out;
}

std::vector<std::uint32_t> NodeProjection::expand_order(
    const std::vector<std::uint32_t>& super_order) const {
  std::vector<std::uint32_t> out;
  out.reserve(original_nodes());
  std::vector<std::size_t> within;
  for (const std::uint32_t s : super_order) {
    if (s >= members.size()) {
      throw std::out_of_range("NodeProjection::expand_order: super id");
    }
    const auto& ms = members[s];
    const auto& ws = weights[s];
    within.resize(ms.size());
    for (std::size_t i = 0; i < ms.size(); ++i) within[i] = i;
    std::stable_sort(within.begin(), within.end(),
                     [&](std::size_t a, std::size_t b) {
                       return ws[a] > ws[b];  // ties keep ascending-id order
                     });
    for (const std::size_t i : within) out.push_back(ms[i]);
  }
  return out;
}

void NodeProjection::validate() const {
  if (members.size() != weights.size()) {
    throw std::logic_error("NodeProjection: members/weights size mismatch");
  }
  std::vector<char> seen(super_of.size(), 0);
  for (std::size_t s = 0; s < members.size(); ++s) {
    if (members[s].empty()) {
      throw std::logic_error("NodeProjection: empty super-block");
    }
    if (members[s].size() != weights[s].size()) {
      throw std::logic_error("NodeProjection: member/weight row mismatch");
    }
    double mass = 0.0;
    for (std::size_t i = 0; i < members[s].size(); ++i) {
      const std::uint32_t v = members[s][i];
      if (v >= super_of.size() || seen[v]) {
        throw std::logic_error(
            "NodeProjection: members do not partition the original nodes");
      }
      seen[v] = 1;
      if (super_of[v] != s) {
        throw std::logic_error("NodeProjection: super_of disagrees with members");
      }
      mass += weights[s][i];
    }
    if (std::abs(mass - 1.0) > 1e-9) {
      throw std::logic_error("NodeProjection: weights of super " +
                             std::to_string(s) + " sum to " +
                             std::to_string(mass));
    }
  }
  for (std::size_t v = 0; v < seen.size(); ++v) {
    if (!seen[v]) {
      throw std::logic_error("NodeProjection: original node " +
                             std::to_string(v) + " unassigned");
    }
  }
}

ReductionState::ReductionState(const Acfg& graph) {
  const std::uint32_t n = graph.num_nodes();
  out_.resize(n);
  in_.resize(n);
  alive_.assign(n, 1);
  members_.resize(n);
  feature_sums_.resize(n);
  const Matrix& features = graph.features();
  for (std::uint32_t v = 0; v < n; ++v) {
    members_[v] = {v};
    feature_sums_[v].resize(features.cols());
    for (std::size_t c = 0; c < features.cols(); ++c) {
      feature_sums_[v][c] = features(v, c);
    }
  }
  for (const Edge& e : graph.edges()) {
    const std::uint8_t bit = e.kind == EdgeKind::Call ? kCallBit : kFlowBit;
    add_mask(out_[e.src], e.dst, bit);
    add_mask(in_[e.dst], e.src, bit);
  }
}

std::uint8_t ReductionState::take(EdgeList& list, std::uint32_t key) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), key,
      [](const auto& entry, std::uint32_t k) { return entry.first < k; });
  if (it == list.end() || it->first != key) return 0;
  const std::uint8_t mask = it->second;
  list.erase(it);
  return mask;
}

void ReductionState::add_mask(EdgeList& list, std::uint32_t key,
                              std::uint8_t mask) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), key,
      [](const auto& entry, std::uint32_t k) { return entry.first < k; });
  if (it != list.end() && it->first == key) {
    it->second |= mask;
  } else {
    list.insert(it, {key, mask});
  }
}

void ReductionState::merge(std::uint32_t winner, std::uint32_t loser) {
  if (winner == loser || !alive(winner) || !alive(loser)) {
    throw std::logic_error("ReductionState::merge: bad representatives");
  }
  // Edges between the pair become intra-super control flow and vanish.
  take(out_[winner], loser);
  take(in_[winner], loser);
  for (const auto& [nbr, mask] : out_[loser]) {
    if (nbr == winner || nbr == loser) continue;
    add_mask(out_[winner], nbr, mask);
    take(in_[nbr], loser);
    add_mask(in_[nbr], winner, mask);
  }
  for (const auto& [nbr, mask] : in_[loser]) {
    if (nbr == winner || nbr == loser) continue;
    add_mask(in_[winner], nbr, mask);
    take(out_[nbr], loser);
    add_mask(out_[nbr], winner, mask);
  }
  out_[loser].clear();
  in_[loser].clear();
  alive_[loser] = 0;

  auto& winner_members = members_[winner];
  auto& loser_members = members_[loser];
  winner_members.insert(winner_members.end(), loser_members.begin(),
                        loser_members.end());
  loser_members.clear();
  loser_members.shrink_to_fit();

  auto& wf = feature_sums_[winner];
  const auto& lf = feature_sums_[loser];
  for (std::size_t c = 0; c < wf.size(); ++c) wf[c] += lf[c];
  feature_sums_[loser].clear();
  ++merges_;
}

bool LinearChainCollapse::apply(ReductionState& state) const {
  bool changed = false;
  const std::uint32_t n = state.num_original();
  for (std::uint32_t u = 0; u < n; ++u) {
    if (!state.alive(u)) continue;
    // The head absorbs the whole maximal chain in one stop: after merging
    // v, u's successor list IS v's, so the same test re-applies.
    for (;;) {
      const auto& out = state.out(u);
      if (out.size() != 1 || out[0].second != ReductionState::kFlowBit) break;
      const std::uint32_t v = out[0].first;
      if (v == u) break;  // explicit self-loop block; never collapsed
      const auto& in = state.in(v);
      if (in.size() != 1 || in[0].first != u ||
          in[0].second != ReductionState::kFlowBit) {
        break;  // v is a join point, or the edge carries a Call component
      }
      state.merge(u, v);
      changed = true;
    }
  }
  return changed;
}

bool BranchDiamondCollapse::apply(ReductionState& state) const {
  bool changed = false;
  const std::uint32_t n = state.num_original();
  // An arm of head u is a block whose only predecessor is u and whose only
  // successor is a single pure-Flow target != u (no self-loops, no back
  // edges to the head — merging those would create or drop a loop).
  // Returns the arm's join target, or n (an impossible id) for a non-arm.
  const auto arm_target = [&](std::uint32_t u, std::uint32_t x,
                              std::uint8_t edge_mask) -> std::uint32_t {
    if (edge_mask != ReductionState::kFlowBit || x == u) return n;
    const auto& xin = state.in(x);
    if (xin.size() != 1 || xin[0].first != u ||
        xin[0].second != ReductionState::kFlowBit) {
      return n;  // extra predecessors or a Call into the arm
    }
    const auto& xout = state.out(x);
    if (xout.size() != 1 || xout[0].second != ReductionState::kFlowBit) {
      return n;  // arm branches again, calls out, or dead-ends
    }
    const std::uint32_t w = xout[0].first;
    return (w == x || w == u) ? n : w;
  };
  for (std::uint32_t u = 0; u < n; ++u) {
    if (!state.alive(u)) continue;
    const auto& out = state.out(u);
    if (out.size() != 2) continue;
    const std::uint32_t a = out[0].first;
    const std::uint32_t b = out[1].first;
    const std::uint32_t ta = arm_target(u, a, out[0].second);
    const std::uint32_t tb = arm_target(u, b, out[1].second);
    if (ta < n && ta == tb) {
      // if/else diamond: both arms fold into the head, leaving u -> join.
      state.merge(u, a);
      state.merge(u, b);
      changed = true;
    } else if (ta == b) {
      // if-without-else triangle: u -> {a, b} with a -> b.
      state.merge(u, a);
      changed = true;
    } else if (tb == a) {
      state.merge(u, b);
      changed = true;
    }
  }
  return changed;
}

bool NopSledCollapse::nop_like(const std::vector<double>& feature_sums) {
  if (feature_sums.size() != kAcfgFeatureCount) return false;
  return feature_sums[kNumericConstants] == 0.0 &&
         feature_sums[kStringConstants] == 0.0 &&
         feature_sums[kCallInstructions] == 0.0 &&
         feature_sums[kArithmeticInstructions] == 0.0 &&
         feature_sums[kCompareInstructions] == 0.0 &&
         feature_sums[kTerminationInstructions] == 0.0 &&
         feature_sums[kDataDeclInstructions] == 0.0 &&
         feature_sums[kTotalInstructions] > 0.0;
}

bool NopSledCollapse::apply(ReductionState& state) const {
  bool changed = false;
  const std::uint32_t n = state.num_original();
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!state.alive(s)) continue;
    const auto& out = state.out(s);
    if (out.size() != 1 || out[0].second != ReductionState::kFlowBit) continue;
    const std::uint32_t t = out[0].first;
    if (t == s) continue;  // self-looping sled (malicious motif): keep
    if (!nop_like(state.feature_sums(s))) continue;
    // The padded code absorbs its padding.
    state.merge(t, s);
    changed = true;
  }
  return changed;
}

std::vector<std::unique_ptr<ReductionPass>> default_passes(
    const ReduceConfig& config) {
  std::vector<std::unique_ptr<ReductionPass>> passes;
  if (config.collapse_linear_chains) {
    passes.push_back(std::make_unique<LinearChainCollapse>());
  }
  if (config.collapse_branch_diamonds) {
    passes.push_back(std::make_unique<BranchDiamondCollapse>());
  }
  if (config.collapse_nop_sleds) {
    passes.push_back(std::make_unique<NopSledCollapse>());
  }
  return passes;
}

ReducedGraph reduce_graph(const Acfg& graph, const ReduceConfig& config) {
  const std::size_t feature_count = graph.feature_count();
  FeatureMergeRules rules = config.merge_rules;
  if (rules.empty()) {
    rules = feature_count == kAcfgFeatureCount
                ? default_acfg_merge_rules()
                : FeatureMergeRules(feature_count, MergeRule::Sum);
  } else if (rules.size() != feature_count) {
    throw std::invalid_argument(
        "reduce_graph: merge_rules size != feature_count");
  }

  ReductionState state(graph);
  const auto passes = default_passes(config);
  ReducedGraph result;
  while (config.max_rounds == 0 || result.rounds < config.max_rounds) {
    bool changed = false;
    for (const auto& pass : passes) {
      changed = pass->apply(state) || changed;
    }
    if (!changed) break;
    ++result.rounds;
  }

  // Materialize: surviving representatives become super-blocks, renumbered
  // by their smallest original member so the output ids are canonical.
  const std::uint32_t n = graph.num_nodes();
  std::vector<std::uint32_t> reps;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (state.alive(v)) reps.push_back(v);
  }
  std::vector<std::vector<std::uint32_t>> sorted_members(reps.size());
  for (std::size_t s = 0; s < reps.size(); ++s) {
    sorted_members[s] = state.members_of(reps[s]);
    std::sort(sorted_members[s].begin(), sorted_members[s].end());
  }
  std::vector<std::size_t> order(reps.size());
  for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sorted_members[a][0] < sorted_members[b][0];
  });
  std::vector<std::uint32_t> new_id(n, 0);  // rep -> super id
  NodeProjection& projection = result.projection;
  projection.super_of.assign(n, 0);
  projection.members.resize(reps.size());
  projection.weights.resize(reps.size());
  for (std::size_t s = 0; s < order.size(); ++s) {
    const std::size_t src = order[s];
    new_id[reps[src]] = static_cast<std::uint32_t>(s);
    projection.members[s] = std::move(sorted_members[src]);
    for (const std::uint32_t v : projection.members[s]) {
      projection.super_of[v] = static_cast<std::uint32_t>(s);
    }
  }

  // Projection weights: each member's share of its super's score.
  const Matrix& features = graph.features();
  for (std::size_t s = 0; s < projection.members.size(); ++s) {
    const auto& ms = projection.members[s];
    auto& ws = projection.weights[s];
    ws.assign(ms.size(), 1.0 / static_cast<double>(ms.size()));
    if (config.weighting == ProjectionWeighting::InstructionShare &&
        feature_count == kAcfgFeatureCount) {
      double total = 0.0;
      for (const std::uint32_t v : ms) total += features(v, kTotalInstructions);
      if (total > 0.0) {
        for (std::size_t i = 0; i < ms.size(); ++i) {
          ws[i] = features(ms[i], kTotalInstructions) / total;
        }
      }
    }
  }

  // The coarse graph: merged features, surviving edges, carried metadata.
  Acfg reduced(static_cast<std::uint32_t>(reps.size()), feature_count);
  for (std::size_t s = 0; s < projection.members.size(); ++s) {
    const auto& ms = projection.members[s];
    for (std::size_t c = 0; c < feature_count; ++c) {
      double acc = features(ms[0], c);
      switch (rules[c]) {
        case MergeRule::Sum:
          for (std::size_t i = 1; i < ms.size(); ++i) acc += features(ms[i], c);
          break;
        case MergeRule::Max:
          for (std::size_t i = 1; i < ms.size(); ++i) {
            acc = std::max(acc, features(ms[i], c));
          }
          break;
        case MergeRule::Count:
          acc = static_cast<double>(ms.size());
          break;
      }
      reduced.features()(static_cast<std::uint32_t>(s), c) = acc;
    }
  }
  std::vector<Edge> edges;
  for (const std::uint32_t rep : reps) {
    for (const auto& [nbr, mask] : state.out(rep)) {
      if (mask & ReductionState::kFlowBit) {
        edges.push_back(Edge{new_id[rep], new_id[nbr], EdgeKind::Flow});
      }
      if (mask & ReductionState::kCallBit) {
        edges.push_back(Edge{new_id[rep], new_id[nbr], EdgeKind::Call});
      }
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
  reduced.set_edges(std::move(edges));
  reduced.set_label(graph.label());
  reduced.set_family(graph.family());
  std::vector<char> super_planted(reps.size(), 0);
  for (const std::uint32_t v : graph.planted_nodes()) {
    super_planted[projection.super_of[v]] = 1;
  }
  for (std::size_t s = 0; s < super_planted.size(); ++s) {
    if (super_planted[s]) {
      reduced.mark_planted(static_cast<std::uint32_t>(s));
    }
  }
  result.graph = std::move(reduced);
  return result;
}

}  // namespace cfgx
