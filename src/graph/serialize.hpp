// Binary (de)serialization for ACFGs and graph collections.
//
// Format:
//   graph      := u32 num_nodes | u32 num_edges | edges | matrix features
//                 | i32 label | string family | u32 plant_count | u32 plants
//   edge       := u32 src | u32 dst | u8 kind
//   collection := magic "CFGXG001" | u64 count | count * graph
//
// Reuses the primitive readers/writers of nn/serialize for strings and
// matrices; throws SerializationError on malformed input.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/acfg.hpp"
#include "nn/serialize.hpp"

namespace cfgx {

void write_acfg(std::ostream& out, const Acfg& graph);
Acfg read_acfg(std::istream& in);

void write_acfg_collection(std::ostream& out, const std::vector<Acfg>& graphs);
std::vector<Acfg> read_acfg_collection(std::istream& in);

void save_acfg_collection_file(const std::string& path,
                               const std::vector<Acfg>& graphs);
std::vector<Acfg> load_acfg_collection_file(const std::string& path);

}  // namespace cfgx
