// Attributed Control Flow Graph (ACFG) — the data model of Section II-A.
//
// A node is a basic block; a directed edge carries weight 1 for fall-through
// and jump edges, and weight 2 for call edges (the paper's weighted
// adjacency A in {0,1,2}^(N x N)). Node attributes are the 12 Table-I block
// features.
//
// Storage is sparse (edge list + dense feature matrix). Dense adjacency
// matrices are materialized on demand by the GNN / explainers, which keeps
// a full corpus resident without the paper's 7352x7352 memory bill.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/matrix.hpp"

namespace cfgx {

// The number of Table-I block features.
inline constexpr std::size_t kAcfgFeatureCount = 12;

// Adjacency weights (paper Section II-A).
inline constexpr double kEdgeFlowWeight = 1.0;  // fall-through or jump
inline constexpr double kEdgeCallWeight = 2.0;  // call

enum class EdgeKind : std::uint8_t { Flow = 1, Call = 2 };

struct Edge {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  EdgeKind kind = EdgeKind::Flow;

  double weight() const noexcept {
    return kind == EdgeKind::Call ? kEdgeCallWeight : kEdgeFlowWeight;
  }

  bool operator==(const Edge&) const = default;
};

class Acfg {
 public:
  Acfg() = default;

  // Creates a graph with `num_nodes` nodes and zeroed features.
  Acfg(std::uint32_t num_nodes, std::size_t feature_count = kAcfgFeatureCount);

  std::uint32_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  std::size_t feature_count() const noexcept { return features_.cols(); }

  // Adds a directed edge; throws on out-of-range endpoints. Parallel edges
  // of the same kind are rejected (the adjacency is a set of weights, not a
  // multiset).
  void add_edge(std::uint32_t src, std::uint32_t dst, EdgeKind kind);
  bool has_edge(std::uint32_t src, std::uint32_t dst) const noexcept;

  // Bulk edge install replacing any existing edges: same validation as
  // add_edge (in-range endpoints, no duplicate (src, dst, kind) triples)
  // but O(E log E) instead of add_edge's O(E^2) incremental scan — the
  // difference between milliseconds and seconds at paper-scale node
  // counts. Edges are stored in the order given (edges() preserves it).
  void set_edges(std::vector<Edge> edges);

  const std::vector<Edge>& edges() const noexcept { return edges_; }

  Matrix& features() noexcept { return features_; }
  const Matrix& features() const noexcept { return features_; }

  int label() const noexcept { return label_; }
  void set_label(int label) noexcept { label_ = label; }

  const std::string& family() const noexcept { return family_; }
  void set_family(std::string family) { family_ = std::move(family); }

  // Ground-truth "planted malicious" node ids recorded by the synthetic
  // corpus generator; empty for real-world graphs. Enables the
  // plant-recovery metric (DESIGN.md section 1).
  const std::vector<std::uint32_t>& planted_nodes() const noexcept {
    return planted_nodes_;
  }
  void mark_planted(std::uint32_t node);

  // Dense weighted adjacency A in {0,1,2}^(N x N).
  Matrix dense_adjacency() const;

  // Out-degree counting each edge once regardless of weight (the Table-I
  // "#offspring" feature).
  std::vector<std::uint32_t> out_degrees() const;
  std::vector<std::uint32_t> in_degrees() const;

  // Throws std::logic_error when internal invariants are broken (edge
  // endpoints in range, feature row count matches node count).
  void validate() const;

  bool operator==(const Acfg&) const = default;

 private:
  std::uint32_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  Matrix features_;
  int label_ = -1;
  std::string family_;
  std::vector<std::uint32_t> planted_nodes_;
};

// Summary statistics used by dataset reports and tests.
struct GraphStats {
  std::uint32_t num_nodes = 0;
  std::size_t num_edges = 0;
  std::size_t num_call_edges = 0;
  double mean_out_degree = 0.0;
  std::uint32_t max_out_degree = 0;
  std::size_t isolated_nodes = 0;
};

GraphStats compute_stats(const Acfg& graph);

}  // namespace cfgx
