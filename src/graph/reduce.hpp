// CFG coarsening pre-pass (ROADMAP item 3): rewrite passes that collapse
// single-entry single-exit control-flow regions — linear chains
// (straight-line control flow split across blocks), if/else diamonds and
// if-without-else triangles whose arms are trivial, and semantic-NOP sleds
// (padding with no data-flow effect) — into super-blocks whose ACFG
// features are aggregated with per-feature merge rules.
//
// The design follows popart's `patterns/`: each rewrite is a small
// composable pass object sharing one mutable ReductionState; reduce_graph
// runs the pass list to a fixpoint and then materializes a compact Acfg
// plus a NodeProjection mapping every super-block back to the original
// basic blocks it absorbed (with weights). Explainers run on the reduced
// graph; scores and rankings project back to original block ids, so
// callers never see super-block numbering. The passes compose: collapsing
// an inner diamond leaves a chain, collapsing a chain exposes an outer
// diamond, so nested conditionals drain over the fixpoint rounds.
//
// Merge semantics: a super-block models one single-entry single-exit
// region executed as a unit. Instruction-count features add (a merged
// region simply contains more instructions, so summed counts stay in the
// distribution the GNN was trained on); the structural #offspring feature
// takes the max (the super inherits the widest fan-out of its members);
// edges internal to a super vanish exactly like control flow internal to a
// basic block. Only pure-Flow structure is ever collapsed — call edges,
// joins with outside predecessors, branch arms with extra predecessors or
// calls, and explicit self-loop blocks (a malicious motif) survive
// reduction untouched.
//
// Determinism: passes sweep nodes in ascending id order and the
// materialized super-blocks are renumbered by their smallest original
// member, so the output is a pure function of the input graph. For
// integer-valued features (all real ACFGs) the summed features are exact,
// making reduction commute with node relabeling bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/acfg.hpp"

namespace cfgx {

// How one feature column aggregates when blocks merge.
enum class MergeRule : std::uint8_t {
  Sum,    // instruction counts: the super simply contains more instructions
  Max,    // structural upper bounds (#offspring)
  Count,  // the number of original blocks absorbed
};

// One rule per feature column.
using FeatureMergeRules = std::vector<MergeRule>;

// Table-I defaults: Sum everywhere except #offspring (Max).
FeatureMergeRules default_acfg_merge_rules();

// How a super-block's score is distributed over its members when
// projecting back to original blocks.
enum class ProjectionWeighting : std::uint8_t {
  Uniform,           // every member inherits an equal share
  InstructionShare,  // share proportional to #total instructions
};

struct ReduceConfig {
  // Empty = default_acfg_merge_rules() for 12-column graphs, all-Sum
  // otherwise. A non-empty list must match the graph's feature_count.
  FeatureMergeRules merge_rules;
  bool collapse_linear_chains = true;
  bool collapse_branch_diamonds = true;
  bool collapse_nop_sleds = true;
  // 0 = run the pass list to a fixpoint; otherwise at most this many
  // rounds over the pass list.
  std::size_t max_rounds = 0;
  ProjectionWeighting weighting = ProjectionWeighting::Uniform;
};

// Super-block -> original-block mapping recorded during reduction.
// `members[s]` lists the original ids absorbed by super s (ascending);
// `weights[s]` (same shape, summing to 1 per super) says how s's score is
// shared among them; `super_of[v]` inverts the mapping. Together they form
// a partition of the original node set.
struct NodeProjection {
  std::vector<std::uint32_t> super_of;              // size original_nodes()
  std::vector<std::vector<std::uint32_t>> members;  // size reduced_nodes()
  std::vector<std::vector<double>> weights;         // parallel to members

  std::size_t original_nodes() const noexcept { return super_of.size(); }
  std::size_t reduced_nodes() const noexcept { return members.size(); }

  // Distributes super-block scores over original blocks by weight; total
  // score mass is conserved (weights sum to 1 per super). `reduced_scores`
  // must have reduced_nodes() entries.
  std::vector<double> project_scores(
      const std::vector<double>& reduced_scores) const;

  // Expands an importance ordering of super-blocks into an ordering of
  // original blocks: supers keep their relative order; within a super,
  // members are ordered by descending weight, ties by ascending id. Every
  // original node appears exactly once when `super_order` is a permutation
  // of the supers.
  std::vector<std::uint32_t> expand_order(
      const std::vector<std::uint32_t>& super_order) const;

  // Throws std::logic_error unless members/weights/super_of describe a
  // partition of [0, original_nodes()) with per-super weights summing to ~1.
  void validate() const;
};

struct ReducedGraph {
  Acfg graph;  // the coarse graph (label/family/planted carried over)
  NodeProjection projection;
  std::size_t rounds = 0;  // pass-list rounds until fixpoint

  std::size_t original_nodes() const noexcept {
    return projection.original_nodes();
  }
  // reduced / original node count; 1.0 for an irreducible graph.
  double reduction_ratio() const noexcept {
    return projection.original_nodes() == 0
               ? 1.0
               : static_cast<double>(projection.reduced_nodes()) /
                     static_cast<double>(projection.original_nodes());
  }
};

// Mutable coarsening state shared by the passes: union-find of merged
// blocks plus kind-masked adjacency maps over the surviving
// representatives. Passes inspect it through the read API and rewrite it
// exclusively through merge().
class ReductionState {
 public:
  explicit ReductionState(const Acfg& graph);

  std::uint32_t num_original() const noexcept {
    return static_cast<std::uint32_t>(members_.size());
  }
  bool alive(std::uint32_t rep) const { return alive_.at(rep) != 0; }

  // Kind masks: bit 0 = Flow, bit 1 = Call.
  static constexpr std::uint8_t kFlowBit = 1;
  static constexpr std::uint8_t kCallBit = 2;
  const std::vector<std::pair<std::uint32_t, std::uint8_t>>& out(
      std::uint32_t rep) const {
    return out_.at(rep);
  }
  const std::vector<std::pair<std::uint32_t, std::uint8_t>>& in(
      std::uint32_t rep) const {
    return in_.at(rep);
  }

  // Running per-representative feature sums (always Sum-rule, regardless of
  // the configured merge rules) — the cheap signal passes use for
  // "semantic-NOP-like" tests.
  const std::vector<double>& feature_sums(std::uint32_t rep) const {
    return feature_sums_.at(rep);
  }

  // Absorbs `loser` into `winner` (both alive representatives, distinct):
  // neighbours are re-pointed at the winner with kind masks unioned, edges
  // between the two vanish (control flow internal to the new super-block),
  // and the loser's members/feature sums fold into the winner's.
  void merge(std::uint32_t winner, std::uint32_t loser);

  std::size_t merges() const noexcept { return merges_; }
  const std::vector<std::uint32_t>& members_of(std::uint32_t rep) const {
    return members_.at(rep);
  }

 private:
  using EdgeList = std::vector<std::pair<std::uint32_t, std::uint8_t>>;
  static std::uint8_t take(EdgeList& list, std::uint32_t key);
  static void add_mask(EdgeList& list, std::uint32_t key, std::uint8_t mask);

  std::vector<EdgeList> out_;  // sorted by neighbour rep id
  std::vector<EdgeList> in_;
  std::vector<char> alive_;
  std::vector<std::vector<std::uint32_t>> members_;
  std::vector<std::vector<double>> feature_sums_;
  std::size_t merges_ = 0;
};

// A composable rewrite pass (popart patterns shape): sweep the current
// state once, merge every match, report whether anything changed.
class ReductionPass {
 public:
  virtual ~ReductionPass() = default;
  virtual const char* name() const noexcept = 0;
  virtual bool apply(ReductionState& state) const = 0;
};

// Collapses maximal linear chains: u is merged with its unique Flow
// successor v when v is u's only successor, u is v's only predecessor, and
// the connecting edge is pure Flow (no Call component, no self-loops on
// either side). The head of the chain absorbs the tail.
class LinearChainCollapse : public ReductionPass {
 public:
  const char* name() const noexcept override { return "linear-chain"; }
  bool apply(ReductionState& state) const override;
};

// Collapses trivial branch regions into their branch head. Two shapes:
//   * diamond: u -> {a, b} -> w where both arms a, b have u as their only
//     predecessor and w as their only successor (pure Flow throughout);
//   * triangle (if-without-else): u -> {a, w} where arm a has u as its only
//     predecessor and w as its only successor.
// The head absorbs the arm blocks; the join w survives (it may have other
// predecessors, and if it does not, the linear-chain pass folds it into u
// on the next round). Arms that carry Call edges, have extra predecessors,
// or loop back to the head are never touched.
class BranchDiamondCollapse : public ReductionPass {
 public:
  const char* name() const noexcept override { return "branch-diamond"; }
  bool apply(ReductionState& state) const override;
};

// Collapses semantic-NOP sleds: a block whose accumulated features contain
// no numeric/string constants and no call, arithmetic, compare,
// termination or data-declaration instructions (mov/xchg/nop padding only)
// is folded into its unique Flow successor. The successor absorbs the
// sled, so the padding's importance lands on the code it pads.
class NopSledCollapse : public ReductionPass {
 public:
  const char* name() const noexcept override { return "nop-sled"; }
  bool apply(ReductionState& state) const override;

  // Exposed for tests: the "semantic-NOP-like" predicate over (summed)
  // Table-I features. False for non-12-column feature layouts.
  static bool nop_like(const std::vector<double>& feature_sums);
};

// The default pass list honouring `config` (chain collapse first — it
// feeds the sled pass shorter graphs).
std::vector<std::unique_ptr<ReductionPass>> default_passes(
    const ReduceConfig& config);

// Runs the passes to a fixpoint and materializes the coarse graph +
// projection. Throws std::invalid_argument when config.merge_rules is
// non-empty but does not match the graph's feature_count.
ReducedGraph reduce_graph(const Acfg& graph, const ReduceConfig& config = {});

}  // namespace cfgx
