#include "graph/ops.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace cfgx {

Matrix normalized_adjacency(const Matrix& adjacency, const Matrix* features) {
  std::vector<double> unused;
  return normalized_adjacency(adjacency, unused, features);
}

Matrix normalized_adjacency(const Matrix& adjacency,
                            std::vector<double>& inv_sqrt_degree_out,
                            const Matrix* features) {
  if (adjacency.rows() != adjacency.cols()) {
    throw std::invalid_argument("normalized_adjacency: matrix must be square");
  }
  const std::size_t n = adjacency.rows();
  if (features != nullptr && features->rows() != n) {
    throw std::invalid_argument(
        "normalized_adjacency: feature/adjacency row mismatch");
  }

  // S = A + A^T; a node is active (and gets a self-loop) when it has an
  // incident edge or a non-zero feature row.
  Matrix s(n, n);
  std::vector<char> active(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double v = adjacency(i, j) + adjacency(j, i);
      s(i, j) = v;
      if (v != 0.0) {
        active[i] = 1;
        active[j] = 1;
      }
    }
  }
  if (features != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i]) continue;
      for (std::size_t c = 0; c < features->cols(); ++c) {
        if ((*features)(i, c) != 0.0) {
          active[i] = 1;
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) s(i, i) += 1.0;
  }

  std::vector<double> inv_sqrt_degree(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (std::size_t j = 0; j < n; ++j) degree += s(i, j);
    if (degree > 0.0) inv_sqrt_degree[i] = 1.0 / std::sqrt(degree);
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      s(i, j) *= inv_sqrt_degree[i] * inv_sqrt_degree[j];
    }
  }
  inv_sqrt_degree_out = std::move(inv_sqrt_degree);
  return s;
}

CsrMatrix normalized_adjacency_csr(const Matrix& adjacency,
                                   const Matrix* features) {
  std::vector<double> unused;
  return normalized_adjacency_csr(adjacency, unused, features);
}

CsrMatrix normalized_adjacency_csr(const Matrix& adjacency,
                                   std::vector<double>& inv_sqrt_degree,
                                   const Matrix* features) {
  return CsrMatrix::from_dense(
      normalized_adjacency(adjacency, inv_sqrt_degree, features));
}

MaskedNormalizedAdjacency::MaskedNormalizedAdjacency(const Matrix& adjacency,
                                                     const Matrix& features) {
  if (adjacency.rows() != adjacency.cols()) {
    throw std::invalid_argument(
        "MaskedNormalizedAdjacency: matrix must be square");
  }
  const std::size_t n = adjacency.rows();
  if (features.rows() != n) {
    throw std::invalid_argument(
        "MaskedNormalizedAdjacency: feature/adjacency row mismatch");
  }

  // Mirror the dense normalized_adjacency computation step for step so the
  // initial values are bit-identical to the reference.
  Matrix s(n, n);
  active_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double v = adjacency(i, j) + adjacency(j, i);
      s(i, j) = v;
      if (v != 0.0) {
        active_[i] = 1;
        active_[j] = 1;
      }
    }
  }
  feature_active_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < features.cols(); ++c) {
      if (features(i, c) != 0.0) {
        feature_active_[i] = 1;
        break;
      }
    }
    if (feature_active_[i]) active_[i] = 1;
  }

  // Frozen structure: symmetrized non-zeros plus the full diagonal (the
  // self-loop slot, even for currently-inactive nodes — activity only ever
  // decreases, so no entry outside this set can become non-zero later).
  std::vector<std::size_t> row_ptr(n + 1, 0);
  std::vector<std::uint32_t> col_idx;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (s(i, j) != 0.0 || i == j) {
        col_idx.push_back(static_cast<std::uint32_t>(j));
        s_edge_.push_back(s(i, j));
      }
    }
    row_ptr[i + 1] = col_idx.size();
  }
  init_from_structure(n, std::move(row_ptr), std::move(col_idx));
}

MaskedNormalizedAdjacency::MaskedNormalizedAdjacency(const Acfg& graph) {
  const std::size_t n = graph.num_nodes();

  // Dense-equivalent directed weights: per ordered pair, a Call edge
  // dominates a coincident Flow edge (the max accumulation of
  // Acfg::dense_adjacency).
  struct Entry {
    std::uint32_t row, col;
    double weight;
  };
  std::vector<Entry> fwd;
  fwd.reserve(graph.num_edges());
  for (const Edge& e : graph.edges()) fwd.push_back({e.src, e.dst, e.weight()});
  const auto by_row_col = [](const Entry& a, const Entry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  };
  std::sort(fwd.begin(), fwd.end(), by_row_col);
  std::vector<Entry> merged;
  merged.reserve(fwd.size());
  for (const Entry& e : fwd) {
    if (!merged.empty() && merged.back().row == e.row &&
        merged.back().col == e.col) {
      merged.back().weight = std::max(merged.back().weight, e.weight);
    } else {
      merged.push_back(e);
    }
  }
  std::vector<Entry> rev;  // A^T entries, sorted by (row, col) of A^T
  rev.reserve(merged.size());
  for (const Entry& e : merged) rev.push_back({e.col, e.row, e.weight});
  std::sort(rev.begin(), rev.end(), by_row_col);

  // Per-row merge of A and A^T in ascending column order, diagonal slot
  // always present. s keeps the dense operand order A(i,j) + A(j,i) with a
  // literal 0.0 for a missing side.
  std::vector<std::size_t> fwd_ptr(n + 1, 0), rev_ptr(n + 1, 0);
  for (const Entry& e : merged) ++fwd_ptr[e.row + 1];
  for (const Entry& e : rev) ++rev_ptr[e.row + 1];
  for (std::size_t i = 0; i < n; ++i) {
    fwd_ptr[i + 1] += fwd_ptr[i];
    rev_ptr[i + 1] += rev_ptr[i];
  }
  std::vector<std::size_t> row_ptr(n + 1, 0);
  std::vector<std::uint32_t> col_idx;
  col_idx.reserve(2 * merged.size() + n);
  s_edge_.reserve(2 * merged.size() + n);
  active_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t f = fwd_ptr[i], r = rev_ptr[i];
    bool saw_diag = false;
    const auto push = [&](std::uint32_t j, double value) {
      if (!saw_diag && j >= i) {
        saw_diag = true;
        if (j != i) {  // structural diagonal even when A has no self-edge
          col_idx.push_back(static_cast<std::uint32_t>(i));
          s_edge_.push_back(0.0);
        }
      }
      col_idx.push_back(j);
      s_edge_.push_back(value);
      if (value != 0.0) {
        active_[i] = 1;
        active_[j] = 1;
      }
    };
    while (f < fwd_ptr[i + 1] || r < rev_ptr[i + 1]) {
      const bool has_f = f < fwd_ptr[i + 1];
      const bool has_r = r < rev_ptr[i + 1];
      if (has_f && has_r && merged[f].col == rev[r].col) {
        push(merged[f].col, merged[f].weight + rev[r].weight);
        ++f;
        ++r;
      } else if (has_f && (!has_r || merged[f].col < rev[r].col)) {
        push(merged[f].col, merged[f].weight + 0.0);
        ++f;
      } else {
        push(rev[r].col, 0.0 + rev[r].weight);
        ++r;
      }
    }
    if (!saw_diag) {
      col_idx.push_back(static_cast<std::uint32_t>(i));
      s_edge_.push_back(0.0);
    }
    row_ptr[i + 1] = col_idx.size();
  }

  feature_active_.assign(n, 0);
  const Matrix& features = graph.features();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < features.cols(); ++c) {
      if (features(i, c) != 0.0) {
        feature_active_[i] = 1;
        break;
      }
    }
    if (feature_active_[i]) active_[i] = 1;
  }
  init_from_structure(n, std::move(row_ptr), std::move(col_idx));
}

void MaskedNormalizedAdjacency::init_from_structure(
    std::size_t n, std::vector<std::size_t> row_ptr,
    std::vector<std::uint32_t> col_idx) {
  // Degrees and d^{-1/2} over the structural entries in ascending column
  // order — the same partial sums as the dense full-row sum (skipped
  // entries are true zeros, all weights non-negative), with the self-loop
  // joining the diagonal weight in the dense path's single `+ 1.0` add.
  degree_.assign(n, 0.0);
  inv_sqrt_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      double term = s_edge_[p];
      if (col_idx[p] == i && active_[i]) term = s_edge_[p] + 1.0;
      degree += term;
    }
    degree_[i] = degree;
    if (degree > 0.0) inv_sqrt_[i] = 1.0 / std::sqrt(degree);
  }

  std::vector<double> values(col_idx.size(), 0.0);
  diag_pos_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const std::uint32_t j = col_idx[p];
      double sv = s_edge_[p];
      if (j == i) {
        diag_pos_[i] = p;
        if (active_[i]) sv += 1.0;
      }
      values[p] = sv * (inv_sqrt_[i] * inv_sqrt_[j]);
    }
  }

  // mirror_[p] = index of the transposed entry; the structure is symmetric
  // (s is, and the diagonal is complete), so a cursor pass suffices.
  mirror_.assign(col_idx.size(), 0);
  std::vector<std::size_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      mirror_[cursor[col_idx[p]]++] = p;
    }
  }

  alive_.assign(n, 1);
  is_dirty_.assign(n, 0);
  a_hat_ = CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                     std::move(values));
}

void MaskedNormalizedAdjacency::mark_dirty(std::uint32_t node) {
  if (!is_dirty_[node]) {
    is_dirty_[node] = 1;
    dirty_.push_back(node);
  }
}

void MaskedNormalizedAdjacency::prune(std::uint32_t node) {
  if (node >= alive_.size()) {
    throw std::out_of_range("MaskedNormalizedAdjacency::prune: out of range");
  }
  if (!alive_[node]) return;
  alive_[node] = 0;
  feature_active_[node] = 0;
  mark_dirty(node);
  const auto& row_ptr = a_hat_.row_ptr();
  const auto& col_idx = a_hat_.col_idx();
  for (std::size_t p = row_ptr[node]; p < row_ptr[node + 1]; ++p) {
    if (s_edge_[p] != 0.0) {
      mark_dirty(col_idx[p]);
      s_edge_[p] = 0.0;
      s_edge_[mirror_[p]] = 0.0;
    }
  }
}

void MaskedNormalizedAdjacency::refresh() {
  const auto& row_ptr = a_hat_.row_ptr();
  const auto& col_idx = a_hat_.col_idx();

  // Pass 1: activity, degree, d^{-1/2} for every touched node. All
  // inv_sqrt_ updates land before any value uses them (pass 2).
  for (const std::uint32_t d : dirty_) {
    bool act = feature_active_[d] != 0;
    for (std::size_t p = row_ptr[d]; p < row_ptr[d + 1] && !act; ++p) {
      if (s_edge_[p] != 0.0) act = true;
    }
    active_[d] = act ? 1 : 0;
    double degree = 0.0;
    for (std::size_t p = row_ptr[d]; p < row_ptr[d + 1]; ++p) {
      double term = s_edge_[p];
      // The self-loop joins the diagonal weight in ONE add, matching the
      // dense path's `s(i, i) += 1.0` before its row sum.
      if (col_idx[p] == d && act) term = s_edge_[p] + 1.0;
      degree += term;
    }
    degree_[d] = degree;
    inv_sqrt_[d] = degree > 0.0 ? 1.0 / std::sqrt(degree) : 0.0;
  }

  // Pass 2: renormalize every entry in a touched row plus its mirror.
  // s and c_i*c_j are both symmetric bitwise, so the mirror gets the same
  // value; entries with two dirty endpoints are written twice, idempotently.
  auto& values = a_hat_.values_mut();
  for (const std::uint32_t d : dirty_) {
    const double cd = inv_sqrt_[d];
    for (std::size_t p = row_ptr[d]; p < row_ptr[d + 1]; ++p) {
      const std::uint32_t j = col_idx[p];
      double sv = s_edge_[p];
      if (j == d && active_[d]) sv += 1.0;
      const double v = sv * (cd * inv_sqrt_[j]);
      values[p] = v;
      values[mirror_[p]] = v;
    }
    is_dirty_[d] = 0;
  }
  dirty_.clear();
}

std::size_t count_active_nodes(const Matrix& adjacency, const Matrix& features) {
  if (adjacency.rows() != adjacency.cols() ||
      adjacency.rows() != features.rows()) {
    throw std::invalid_argument("count_active_nodes: shape mismatch");
  }
  const std::size_t n = adjacency.rows();
  std::size_t active = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bool is_active = false;
    for (std::size_t j = 0; j < n && !is_active; ++j) {
      if (adjacency(i, j) != 0.0 || adjacency(j, i) != 0.0) is_active = true;
    }
    for (std::size_t c = 0; c < features.cols() && !is_active; ++c) {
      if (features(i, c) != 0.0) is_active = true;
    }
    if (is_active) ++active;
  }
  return active;
}

std::size_t count_active_nodes(const Acfg& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<char> active(n, 0);
  for (const Edge& e : graph.edges()) {
    active[e.src] = 1;
    active[e.dst] = 1;
  }
  const Matrix& features = graph.features();
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) continue;
    for (std::size_t c = 0; c < features.cols(); ++c) {
      if (features(i, c) != 0.0) {
        active[i] = 1;
        break;
      }
    }
  }
  std::size_t count = 0;
  for (char a : active) count += a != 0;
  return count;
}

Acfg masked_subgraph(const Acfg& graph,
                     const std::vector<std::uint32_t>& kept) {
  const std::uint32_t n = graph.num_nodes();
  std::vector<char> keep(n, 0);
  for (std::uint32_t node : kept) {
    if (node >= n) {
      throw std::out_of_range("masked_subgraph: node out of range");
    }
    keep[node] = 1;
  }

  Acfg out(n, graph.feature_count());
  std::vector<Edge> edges;
  edges.reserve(graph.num_edges());
  for (const Edge& e : graph.edges()) {
    if (keep[e.src] && keep[e.dst]) edges.push_back(e);
  }
  out.set_edges(std::move(edges));

  const Matrix& features = graph.features();
  Matrix& out_features = out.features();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!keep[i]) continue;
    for (std::size_t c = 0; c < features.cols(); ++c) {
      out_features(i, c) = features(i, c);
    }
  }
  out.set_label(graph.label());
  out.set_family(graph.family());
  for (std::uint32_t node : graph.planted_nodes()) {
    if (keep[node]) out.mark_planted(node);
  }
  return out;
}

GraphBatch batch_normalized_graphs(const std::vector<const Acfg*>& graphs) {
  GraphBatch batch;
  if (graphs.empty()) return batch;

  std::size_t feature_count = 0;
  std::size_t total_nodes = 0;
  for (std::size_t k = 0; k < graphs.size(); ++k) {
    if (graphs[k] == nullptr) {
      throw std::invalid_argument(
          "batch_normalized_graphs: null graph at index " + std::to_string(k));
    }
    if (k == 0) {
      feature_count = graphs[k]->feature_count();
    } else if (graphs[k]->feature_count() != feature_count) {
      throw std::invalid_argument(
          "batch_normalized_graphs: feature_count mismatch (" +
          std::to_string(graphs[k]->feature_count()) + " vs " +
          std::to_string(feature_count) + " at index " + std::to_string(k) +
          ")");
    }
    total_nodes += graphs[k]->num_nodes();
  }

  std::vector<CsrMatrix> per_graph;
  per_graph.reserve(graphs.size());
  batch.features = Matrix(total_nodes, feature_count);
  batch.inv_sqrt_degree.reserve(total_nodes);
  batch.active_counts.reserve(graphs.size());

  std::size_t row_base = 0;
  for (const Acfg* graph : graphs) {
    const Matrix adjacency = graph->dense_adjacency();
    std::vector<double> inv_sqrt;
    per_graph.push_back(
        normalized_adjacency_csr(adjacency, inv_sqrt, &graph->features()));

    // inv_sqrt is non-zero exactly for active nodes, so its non-zero count
    // IS count_active_nodes(adjacency, features).
    std::size_t active = 0;
    for (double v : inv_sqrt) {
      if (v != 0.0) ++active;
    }
    batch.active_counts.push_back(active);
    batch.inv_sqrt_degree.insert(batch.inv_sqrt_degree.end(),
                                 inv_sqrt.begin(), inv_sqrt.end());

    const Matrix& feats = graph->features();
    for (std::size_t r = 0; r < feats.rows(); ++r) {
      for (std::size_t c = 0; c < feature_count; ++c) {
        batch.features(row_base + r, c) = feats(r, c);
      }
    }
    row_base += graph->num_nodes();
  }

  std::vector<const CsrMatrix*> ptrs;
  ptrs.reserve(per_graph.size());
  for (const CsrMatrix& csr : per_graph) ptrs.push_back(&csr);
  batch.a_hat = BatchedCsr::concat(ptrs);
  return batch;
}

void mask_node(Matrix& adjacency, Matrix& features, std::uint32_t node) {
  if (node >= adjacency.rows() || adjacency.rows() != adjacency.cols()) {
    throw std::out_of_range("mask_node: node out of range");
  }
  if (features.rows() != adjacency.rows()) {
    throw std::invalid_argument("mask_node: feature/adjacency row mismatch");
  }
  for (std::size_t j = 0; j < adjacency.cols(); ++j) {
    adjacency(node, j) = 0.0;  // outgoing (Algorithm 2 line 17)
    adjacency(j, node) = 0.0;  // incoming (Algorithm 2 line 18)
  }
  for (std::size_t c = 0; c < features.cols(); ++c) features(node, c) = 0.0;
}

MaskedGraph keep_only(const Matrix& adjacency, const Matrix& features,
                      const std::vector<std::uint32_t>& kept) {
  MaskedGraph out{adjacency, features};
  std::vector<char> keep(adjacency.rows(), 0);
  for (std::uint32_t node : kept) {
    if (node >= adjacency.rows()) {
      throw std::out_of_range("keep_only: node out of range");
    }
    keep[node] = 1;
  }
  for (std::uint32_t node = 0; node < adjacency.rows(); ++node) {
    if (!keep[node]) mask_node(out.adjacency, out.features, node);
  }
  return out;
}

bool node_is_masked(const Matrix& adjacency, std::uint32_t node) {
  for (std::size_t j = 0; j < adjacency.cols(); ++j) {
    if (adjacency(node, j) != 0.0 || adjacency(j, node) != 0.0) return false;
  }
  return true;
}

std::vector<std::uint32_t> top_k_nodes(const std::vector<double>& scores,
                                       std::size_t k) {
  if (k > scores.size()) throw std::invalid_argument("top_k_nodes: k > node count");
  std::vector<std::uint32_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return scores[a] > scores[b];
                   });
  order.resize(k);
  return order;
}

std::size_t nodes_for_fraction(std::uint32_t num_nodes, double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("nodes_for_fraction: fraction outside [0,1]");
  }
  if (num_nodes == 0) return 0;
  const auto k = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(num_nodes)));
  return std::clamp<std::size_t>(k, 1, num_nodes);
}

}  // namespace cfgx
