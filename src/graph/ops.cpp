#include "graph/ops.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cfgx {

Matrix normalized_adjacency(const Matrix& adjacency, const Matrix* features) {
  std::vector<double> unused;
  return normalized_adjacency(adjacency, unused, features);
}

Matrix normalized_adjacency(const Matrix& adjacency,
                            std::vector<double>& inv_sqrt_degree_out,
                            const Matrix* features) {
  if (adjacency.rows() != adjacency.cols()) {
    throw std::invalid_argument("normalized_adjacency: matrix must be square");
  }
  const std::size_t n = adjacency.rows();
  if (features != nullptr && features->rows() != n) {
    throw std::invalid_argument(
        "normalized_adjacency: feature/adjacency row mismatch");
  }

  // S = A + A^T; a node is active (and gets a self-loop) when it has an
  // incident edge or a non-zero feature row.
  Matrix s(n, n);
  std::vector<char> active(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double v = adjacency(i, j) + adjacency(j, i);
      s(i, j) = v;
      if (v != 0.0) {
        active[i] = 1;
        active[j] = 1;
      }
    }
  }
  if (features != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (active[i]) continue;
      for (std::size_t c = 0; c < features->cols(); ++c) {
        if ((*features)(i, c) != 0.0) {
          active[i] = 1;
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) s(i, i) += 1.0;
  }

  std::vector<double> inv_sqrt_degree(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (std::size_t j = 0; j < n; ++j) degree += s(i, j);
    if (degree > 0.0) inv_sqrt_degree[i] = 1.0 / std::sqrt(degree);
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      s(i, j) *= inv_sqrt_degree[i] * inv_sqrt_degree[j];
    }
  }
  inv_sqrt_degree_out = std::move(inv_sqrt_degree);
  return s;
}

CsrMatrix normalized_adjacency_csr(const Matrix& adjacency,
                                   const Matrix* features) {
  std::vector<double> unused;
  return normalized_adjacency_csr(adjacency, unused, features);
}

CsrMatrix normalized_adjacency_csr(const Matrix& adjacency,
                                   std::vector<double>& inv_sqrt_degree,
                                   const Matrix* features) {
  return CsrMatrix::from_dense(
      normalized_adjacency(adjacency, inv_sqrt_degree, features));
}

std::size_t count_active_nodes(const Matrix& adjacency, const Matrix& features) {
  if (adjacency.rows() != adjacency.cols() ||
      adjacency.rows() != features.rows()) {
    throw std::invalid_argument("count_active_nodes: shape mismatch");
  }
  const std::size_t n = adjacency.rows();
  std::size_t active = 0;
  for (std::size_t i = 0; i < n; ++i) {
    bool is_active = false;
    for (std::size_t j = 0; j < n && !is_active; ++j) {
      if (adjacency(i, j) != 0.0 || adjacency(j, i) != 0.0) is_active = true;
    }
    for (std::size_t c = 0; c < features.cols() && !is_active; ++c) {
      if (features(i, c) != 0.0) is_active = true;
    }
    if (is_active) ++active;
  }
  return active;
}

void mask_node(Matrix& adjacency, Matrix& features, std::uint32_t node) {
  if (node >= adjacency.rows() || adjacency.rows() != adjacency.cols()) {
    throw std::out_of_range("mask_node: node out of range");
  }
  if (features.rows() != adjacency.rows()) {
    throw std::invalid_argument("mask_node: feature/adjacency row mismatch");
  }
  for (std::size_t j = 0; j < adjacency.cols(); ++j) {
    adjacency(node, j) = 0.0;  // outgoing (Algorithm 2 line 17)
    adjacency(j, node) = 0.0;  // incoming (Algorithm 2 line 18)
  }
  for (std::size_t c = 0; c < features.cols(); ++c) features(node, c) = 0.0;
}

MaskedGraph keep_only(const Matrix& adjacency, const Matrix& features,
                      const std::vector<std::uint32_t>& kept) {
  MaskedGraph out{adjacency, features};
  std::vector<char> keep(adjacency.rows(), 0);
  for (std::uint32_t node : kept) {
    if (node >= adjacency.rows()) {
      throw std::out_of_range("keep_only: node out of range");
    }
    keep[node] = 1;
  }
  for (std::uint32_t node = 0; node < adjacency.rows(); ++node) {
    if (!keep[node]) mask_node(out.adjacency, out.features, node);
  }
  return out;
}

bool node_is_masked(const Matrix& adjacency, std::uint32_t node) {
  for (std::size_t j = 0; j < adjacency.cols(); ++j) {
    if (adjacency(node, j) != 0.0 || adjacency(j, node) != 0.0) return false;
  }
  return true;
}

std::vector<std::uint32_t> top_k_nodes(const std::vector<double>& scores,
                                       std::size_t k) {
  if (k > scores.size()) throw std::invalid_argument("top_k_nodes: k > node count");
  std::vector<std::uint32_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return scores[a] > scores[b];
                   });
  order.resize(k);
  return order;
}

std::size_t nodes_for_fraction(std::uint32_t num_nodes, double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("nodes_for_fraction: fraction outside [0,1]");
  }
  if (num_nodes == 0) return 0;
  const auto k = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(num_nodes)));
  return std::clamp<std::size_t>(k, 1, num_nodes);
}

}  // namespace cfgx
