// Graphviz DOT export of ACFGs, with optional highlighting of an
// explanation subgraph and optional disassembly labels — the "zoom in on
// the most important blocks ... in tandem with tools such as IDA-Pro"
// workflow the paper's introduction motivates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/acfg.hpp"

namespace cfgx {

struct DotOptions {
  // Nodes drawn filled/emphasized (an explainer's top-k% set).
  std::vector<std::uint32_t> highlighted_nodes;
  // Optional label provider (e.g. truncated disassembly from a LiftedCfg);
  // when empty, nodes are labeled "B<id>".
  std::function<std::string(std::uint32_t)> node_label;
  // Truncate labels to this many characters (0 = no truncation).
  std::size_t max_label_length = 60;
  std::string graph_name = "acfg";
  // Render call edges dashed with a distinct color.
  bool style_call_edges = true;
};

// Renders the graph as a DOT digraph. Throws std::out_of_range when a
// highlighted node id is outside the graph.
std::string to_dot(const Acfg& graph, const DotOptions& options = {});

// Convenience: write to a file; throws std::runtime_error on I/O failure.
void write_dot_file(const std::string& path, const Acfg& graph,
                    const DotOptions& options = {});

}  // namespace cfgx
