#include "graph/dot.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cfgx {
namespace {

// DOT string literals need '"' and '\' escaped; newlines become left-aligned
// line breaks.
std::string escape_label(const std::string& raw, std::size_t max_length) {
  std::string clipped = raw;
  if (max_length > 0 && clipped.size() > max_length) {
    clipped.resize(max_length);
    clipped += "...";
  }
  std::string out;
  out.reserve(clipped.size() + 8);
  for (char c : clipped) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\l"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_dot(const Acfg& graph, const DotOptions& options) {
  std::vector<char> highlighted(graph.num_nodes(), 0);
  for (std::uint32_t node : options.highlighted_nodes) {
    if (node >= graph.num_nodes()) {
      throw std::out_of_range("to_dot: highlighted node out of range");
    }
    highlighted[node] = 1;
  }

  std::ostringstream out;
  out << "digraph " << options.graph_name << " {\n";
  out << "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";

  for (std::uint32_t node = 0; node < graph.num_nodes(); ++node) {
    const std::string label =
        options.node_label ? options.node_label(node)
                           : "B" + std::to_string(node);
    out << "  n" << node << " [label=\""
        << escape_label(label, options.max_label_length) << "\"";
    if (highlighted[node]) {
      out << ", style=filled, fillcolor=\"#ffd8a8\", penwidth=2";
    }
    out << "];\n";
  }

  for (const Edge& edge : graph.edges()) {
    out << "  n" << edge.src << " -> n" << edge.dst;
    if (options.style_call_edges && edge.kind == EdgeKind::Call) {
      out << " [style=dashed, color=\"#1971c2\", label=\"call\"]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

void write_dot_file(const std::string& path, const Acfg& graph,
                    const DotOptions& options) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_dot_file: cannot open '" + path + "'");
  }
  out << to_dot(graph, options);
  if (!out) {
    throw std::runtime_error("write_dot_file: write failure on '" + path + "'");
  }
}

}  // namespace cfgx
