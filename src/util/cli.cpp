#include "util/cli.hpp"

#include <stdexcept>

namespace cfgx {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise a
    // bare boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

bool CliArgs::get_flag(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  return it->second.empty() || it->second == "true" || it->second == "1";
}

std::string CliArgs::get_string(const std::string& name, std::string fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(fallback) : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("CliArgs: flag --" + name +
                                " expects an integer, got '" + it->second + "'");
  }
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("CliArgs: flag --" + name +
                                " expects a number, got '" + it->second + "'");
  }
}

}  // namespace cfgx
