#include "util/timer.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace cfgx {

double DurationStats::min() const {
  if (samples_.empty()) throw std::logic_error("DurationStats::min: no samples");
  return *std::min_element(samples_.begin(), samples_.end());
}

double DurationStats::max() const {
  if (samples_.empty()) throw std::logic_error("DurationStats::max: no samples");
  return *std::max_element(samples_.begin(), samples_.end());
}

std::string DurationStats::summary() const {
  const double m = mean();
  const double sd = stddev();
  char buf[64];
  if (m >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f +/- %.2f s", m, sd);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f +/- %.2f ms", m * 1e3, sd * 1e3);
  }
  return buf;
}

}  // namespace cfgx
