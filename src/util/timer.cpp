#include "util/timer.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace cfgx {

double DurationStats::min() const {
  if (samples_.empty()) throw std::logic_error("DurationStats::min: no samples");
  return *std::min_element(samples_.begin(), samples_.end());
}

double DurationStats::max() const {
  if (samples_.empty()) throw std::logic_error("DurationStats::max: no samples");
  return *std::max_element(samples_.begin(), samples_.end());
}

double DurationStats::percentile(double p) const {
  if (!(p >= 0.0 && p <= 100.0)) {  // rejects NaN too
    throw std::invalid_argument("DurationStats::percentile: p outside [0, 100]");
  }
  // Empty => 0.0, not a throw: percentile() sits on metrics-reporting
  // paths that must stay alive when a reporting window saw no samples.
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double fraction = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - fraction) + sorted[lo + 1] * fraction;
}

std::string DurationStats::summary() const {
  const double m = mean();
  const double sd = stddev();
  char buf[64];
  if (m >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f +/- %.2f s", m, sd);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f +/- %.2f ms", m * 1e3, sd * 1e3);
  }
  return buf;
}

}  // namespace cfgx
