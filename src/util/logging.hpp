// Minimal leveled logger writing to stderr.
//
// Usage: CFGX_LOG(Info) << "trained " << n << " epochs";
// The global level gates output; benches raise it to keep tables clean.
//
// The initial level is parsed from the CFGX_LOG_LEVEL environment variable
// at startup ("debug", "info", "warn", "error", "off", case-insensitive, or
// the numeric 0-4); unset or unparsable falls back to Info. Each line is
// tagged with the stable obs::thread_id() of the emitting thread ([T03]) so
// interleaved thread-pool output is attributable.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace cfgx {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel global_log_level() noexcept;
void set_global_log_level(LogLevel level) noexcept;

// Sets the level only when CFGX_LOG_LEVEL is unset/empty, so a binary can
// pick its preferred default verbosity without clobbering the user's.
void set_default_log_level(LogLevel level) noexcept;

const char* to_string(LogLevel level) noexcept;

// Parses a level name ("warn", "WARN") or numeric value ("2"). Throws
// std::invalid_argument on anything else.
LogLevel log_level_from_string(const std::string& text);

namespace detail {

// Collects one log line and flushes it (with level prefix and timestamp)
// on destruction. Cheap when the line is filtered out: LogLine is only
// constructed after the level check in the macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cfgx

#define CFGX_LOG(severity)                                          \
  if (::cfgx::LogLevel::severity < ::cfgx::global_log_level()) {    \
  } else                                                            \
    ::cfgx::detail::LogLine(::cfgx::LogLevel::severity)
