// Minimal leveled logger writing to stderr.
//
// Usage: CFGX_LOG(Info) << "trained " << n << " epochs";
// The global level gates output; benches raise it to keep tables clean.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace cfgx {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel global_log_level() noexcept;
void set_global_log_level(LogLevel level) noexcept;

const char* to_string(LogLevel level) noexcept;

namespace detail {

// Collects one log line and flushes it (with level prefix and timestamp)
// on destruction. Cheap when the line is filtered out: LogLine is only
// constructed after the level check in the macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cfgx

#define CFGX_LOG(severity)                                          \
  if (::cfgx::LogLevel::severity < ::cfgx::global_log_level()) {    \
  } else                                                            \
    ::cfgx::detail::LogLine(::cfgx::LogLevel::severity)
