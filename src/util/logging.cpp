#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace cfgx {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_io_mutex;

}  // namespace

LogLevel global_log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_global_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

namespace detail {

LogLine::~LogLine() {
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[%8lld.%03lld] %-5s %s\n",
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), to_string(level_),
               stream_.str().c_str());
}

}  // namespace detail
}  // namespace cfgx
