#include "util/logging.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "obs/trace.hpp"

namespace cfgx {
namespace {

// CFGX_LOG_LEVEL is parsed once, before main() runs, so benches and tests
// can change verbosity without recompiling or threading a flag through.
LogLevel initial_log_level() noexcept {
  const char* env = std::getenv("CFGX_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::Info;
  try {
    return log_level_from_string(env);
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "[logging] ignoring bad CFGX_LOG_LEVEL '%s'\n", env);
    return LogLevel::Info;
  }
}

std::atomic<LogLevel> g_level{initial_log_level()};
std::mutex g_io_mutex;

}  // namespace

LogLevel global_log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_global_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

void set_default_log_level(LogLevel level) noexcept {
  const char* env = std::getenv("CFGX_LOG_LEVEL");
  if (env == nullptr || *env == '\0') set_global_log_level(level);
}

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

LogLevel log_level_from_string(const std::string& text) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "debug" || lower == "0") return LogLevel::Debug;
  if (lower == "info" || lower == "1") return LogLevel::Info;
  if (lower == "warn" || lower == "warning" || lower == "2") return LogLevel::Warn;
  if (lower == "error" || lower == "3") return LogLevel::Error;
  if (lower == "off" || lower == "none" || lower == "4") return LogLevel::Off;
  throw std::invalid_argument("unknown log level '" + text + "'");
}

namespace detail {

LogLine::~LogLine() {
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[%8lld.%03lld] [T%02u] %-5s %s\n",
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), obs::thread_id(),
               to_string(level_), stream_.str().c_str());
}

}  // namespace detail
}  // namespace cfgx
