// Tiny command-line flag parser for examples and bench binaries.
//
//   CliArgs args(argc, argv);
//   int epochs = args.get_int("epochs", 30);
//   bool fast  = args.get_flag("fast");
//
// Accepted syntax: --name=value, --name value, --flag.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cfgx {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  // Boolean flag: present (with no value or "true"/"1") => true.
  bool get_flag(const std::string& name) const;

  std::string get_string(const std::string& name, std::string fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  // Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace cfgx
