// Deterministic random number generation for the whole repository.
//
// Every stochastic component (weight init, corpus generation, mini-batch
// sampling, Monte-Carlo Shapley, ...) draws from an explicitly seeded Rng
// instance. There is no global RNG state, so results are reproducible
// bit-for-bit and independent streams can be split off for parallel work.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace cfgx {

// splitmix64: used to expand a single 64-bit seed into a full xoshiro state.
// Reference: Sebastiano Vigna, public domain.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed'cafe'f00dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Derive an independent child stream; deterministic in (parent state, tag).
  Rng split(std::uint64_t tag) noexcept {
    std::uint64_t mix = (*this)() ^ (tag * 0x9e3779b97f4a7c15ULL);
    return Rng{splitmix64(mix)};
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  // avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be > 0");
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_index(span));
  }

  // Standard normal via Box-Muller (single value; the sibling is discarded
  // to keep the generator state path independent of caller patterns).
  double normal() noexcept;

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& values) {
    shuffle(std::span<T>{values});
  }

  // Uniformly pick one element. Requires non-empty input.
  template <typename T>
  const T& choice(std::span<const T> values) {
    if (values.empty()) throw std::invalid_argument("Rng::choice: empty span");
    return values[uniform_index(values.size())];
  }

  template <typename T>
  const T& choice(const std::vector<T>& values) {
    return choice(std::span<const T>{values});
  }

  // Sample k distinct indices from [0, n) in random order (partial
  // Fisher-Yates). Requires k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace cfgx
