// ASCII table rendering used by the benchmark harness to print rows in the
// same layout as the paper's tables (Table III, IV, V, ...).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cfgx {

enum class Align { Left, Right };

// A simple column-aligned table. Cells are strings; numeric formatting is
// the caller's responsibility (see format_fixed below).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header,
                     std::vector<Align> alignment = {});

  // Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  // Inserts a horizontal rule before the next added row.
  void add_rule();

  std::size_t row_count() const { return rows_.size(); }

  // Renders the full table with a header rule.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

// Fixed-point formatting helper ("0.7531" style used throughout the paper).
std::string format_fixed(double value, int decimals = 4);

// Percentage formatting ("52.4%").
std::string format_percent(double fraction, int decimals = 1);

}  // namespace cfgx
