// Wall-clock timing and simple summary statistics for Table IV style
// "mean +/- std per explanation" reporting.
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace cfgx {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates sample durations and reports mean / standard deviation.
class DurationStats {
 public:
  void add(double seconds) { samples_.push_back(seconds); }

  std::size_t count() const { return samples_.size(); }

  double total() const {
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum;
  }

  double mean() const { return samples_.empty() ? 0.0 : total() / samples_.size(); }

  // Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double s : samples_) acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  double min() const;
  double max() const;

  // "12.3 +/- 0.4 ms" or "1.2 +/- 0.1 s" depending on magnitude.
  std::string summary() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace cfgx
