// Wall-clock timing and simple summary statistics for Table IV style
// "mean +/- std per explanation" reporting.
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace cfgx {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates sample durations and reports mean / standard deviation /
// percentiles. Running sum and sum-of-squares make mean(), total() and
// stddev() O(1) per call regardless of sample count; the raw samples are
// retained for percentile() and serialization.
class DurationStats {
 public:
  void add(double seconds) {
    samples_.push_back(seconds);
    sum_ += seconds;
    sum_sq_ += seconds * seconds;
  }

  std::size_t count() const { return samples_.size(); }

  double total() const { return sum_; }

  double mean() const {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }

  // Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const {
    const auto n = static_cast<double>(samples_.size());
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    // Guard against tiny negative residuals from catastrophic cancellation.
    const double variance = std::max(0.0, (sum_sq_ - n * m * m) / (n - 1.0));
    return std::sqrt(variance);
  }

  double min() const;
  double max() const;

  // p-th percentile in [0, 100] with linear interpolation between order
  // statistics (percentile(50) of {1,2,3,4} is 2.5). With a single sample
  // every percentile is that sample. Returns 0.0 when no samples were
  // recorded — durations are positive, so 0.0 unambiguously means "empty",
  // and a metrics-reporting path in a long-running process (e.g. a serving
  // window that completed no requests) must not throw. Matches
  // obs::Histogram::quantile's empty semantics. Throws
  // std::invalid_argument outside [0, 100].
  double percentile(double p) const;

  // "12.3 +/- 0.4 ms" or "1.2 +/- 0.1 s" depending on magnitude.
  std::string summary() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace cfgx
