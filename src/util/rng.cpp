#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

namespace cfgx {

double Rng::normal() noexcept {
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace cfgx
