#include "util/thread_pool.hpp"

#include <algorithm>

namespace cfgx {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured by the packaged_task
  }
}

}  // namespace cfgx
