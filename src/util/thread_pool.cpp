#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cfgx {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PoolMetrics {
  obs::Counter& tasks_submitted;
  obs::Gauge& queue_depth;
  obs::Histogram& task_wait_seconds;
  obs::Histogram& task_run_seconds;

  static PoolMetrics& get() {
    static PoolMetrics metrics{
        obs::MetricsRegistry::global().counter("pool.tasks_submitted"),
        obs::MetricsRegistry::global().gauge("pool.queue_depth"),
        obs::MetricsRegistry::global().histogram("pool.task_wait_seconds"),
        obs::MetricsRegistry::global().histogram("pool.task_run_seconds")};
    return metrics;
  }
};

// Identifies the pool (if any) that owns the current thread, so
// parallel_for can detect reentrant calls and run inline instead of
// blocking on futures stuck behind the caller's own task.
thread_local const ThreadPool* current_worker_pool = nullptr;

// Runs fn over [0, count) on the calling thread with the parallel_for
// exception contract: every index is attempted, the first error rethrown.
void run_serial(std::size_t count, const std::function<void(std::size_t)>& fn) {
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < count; ++i) {
    try {
      fn(i);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::in_worker_thread() const {
  return current_worker_pool == this;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  QueuedTask queued;
  queued.task = std::packaged_task<void()>(std::move(task));
  std::future<void> future = queued.task.get_future();
  const bool instrumented = obs::metrics_enabled();
  if (instrumented) queued.enqueued_seconds = now_seconds();
  std::size_t depth = 0;
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      throw std::logic_error("ThreadPool::submit after shutdown began");
    }
    queue_.push(std::move(queued));
    depth = queue_.size();
  }
  cv_.notify_one();
  if (instrumented) {
    auto& metrics = PoolMetrics::get();
    metrics.tasks_submitted.add();
    metrics.queue_depth.set(static_cast<double>(depth));
  }
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || in_worker_thread()) {
    // Reentrant call: this worker's sub-tasks would sit in the queue behind
    // the task it is currently running, and future.get() below would never
    // return on a saturated (worst case: 1-thread) pool.
    run_serial(count, fn);
    return;
  }

  // One contiguous chunk per worker instead of one queue entry per index:
  // small per-item bodies are otherwise dominated by packaged_task
  // allocation and queue-lock traffic.
  const std::size_t chunk_count = std::min(count, worker_count());
  const std::size_t chunk = (count + chunk_count - 1) / chunk_count;
  std::vector<std::future<void>> futures;
  futures.reserve(chunk_count);
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    futures.push_back(submit([&fn, begin, end] {
      run_serial(end - begin, [&fn, begin](std::size_t k) { fn(begin + k); });
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  current_worker_pool = this;
  for (;;) {
    QueuedTask queued;
    std::size_t depth = 0;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      queued = std::move(queue_.front());
      queue_.pop();
      depth = queue_.size();
    }
    if (obs::metrics_enabled()) {
      auto& metrics = PoolMetrics::get();
      metrics.queue_depth.set(static_cast<double>(depth));
      const double start = now_seconds();
      if (queued.enqueued_seconds > 0.0) {
        metrics.task_wait_seconds.record(start - queued.enqueued_seconds);
      }
      {
        obs::TraceSpan span("pool.task", "pool");
        queued.task();  // exceptions are captured by the packaged_task
      }
      metrics.task_run_seconds.record(now_seconds() - start);
    } else {
      obs::TraceSpan span("pool.task", "pool");
      queued.task();  // exceptions are captured by the packaged_task
    }
  }
}

}  // namespace cfgx
