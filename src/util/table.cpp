#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cfgx {

TextTable::TextTable(std::vector<std::string> header,
                     std::vector<Align> alignment)
    : header_(std::move(header)), alignment_(std::move(alignment)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
  if (alignment_.empty()) {
    alignment_.assign(header_.size(), Align::Left);
  }
  if (alignment_.size() != header_.size()) {
    throw std::invalid_argument("TextTable: alignment arity mismatch");
  }
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: arity mismatch");
  }
  rows_.push_back(Row{std::move(row), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto emit_cells = [&](std::ostringstream& out,
                              const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      out << ' ';
      if (alignment_[c] == Align::Right) out << std::string(pad, ' ');
      out << cells[c];
      if (alignment_[c] == Align::Left) out << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };
  const auto emit_rule = [&](std::ostringstream& out) {
    out << '+';
    for (std::size_t width : widths) out << std::string(width + 2, '-') << '+';
    out << '\n';
  };

  std::ostringstream out;
  emit_rule(out);
  emit_cells(out, header_);
  emit_rule(out);
  for (const Row& row : rows_) {
    if (row.rule_before) emit_rule(out);
    emit_cells(out, row.cells);
  }
  emit_rule(out);
  return out.str();
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace cfgx
