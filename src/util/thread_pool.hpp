// Fixed-size thread pool with a parallel_for helper.
//
// Used to parallelize per-graph explanation work and the sparse/dense
// matrix kernels (each unit of work writes a disjoint output region, so
// parallel execution does not perturb determinism). On a single-core
// machine the pool degrades gracefully to near-serial execution with
// identical results.
//
// Reentrancy: parallel_for called from one of this pool's own workers runs
// inline on the calling thread. A worker that blocked on futures for
// sub-tasks queued behind its own task would deadlock (most visibly with a
// 1-thread pool); inline execution preserves results and the exception
// contract.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cfgx {

class ThreadPool {
 public:
  // worker_count == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  // True when the calling thread is one of THIS pool's workers.
  bool in_worker_thread() const;

  // Enqueue a task; the returned future rethrows any task exception.
  // Throws std::logic_error once shutdown has begun: a task enqueued after
  // the workers were told to drain could be popped by no one, leaving its
  // future waiting forever — a latent hang in any long-running process
  // that races submission against teardown.
  std::future<void> submit(std::function<void()> task);

  // Runs fn(i) for i in [0, count), blocking until all complete. Indices
  // are dispatched as at most worker_count() contiguous chunks (one queue
  // entry per chunk, not per index). Every index is attempted even when an
  // earlier one throws; the first exception in index order is rethrown.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  // Enqueue timestamp rides along so workers can report queue wait time;
  // it is only populated (and the clock only read) while metrics are on.
  struct QueuedTask {
    std::packaged_task<void()> task;
    double enqueued_seconds = 0.0;
  };

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace cfgx
