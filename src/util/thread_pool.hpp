// Fixed-size thread pool with a parallel_for helper.
//
// Used to parallelize per-graph explanation work (each graph's computation
// is seed-isolated, so parallel execution does not perturb determinism).
// On a single-core machine the pool degrades gracefully to near-serial
// execution with identical results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cfgx {

class ThreadPool {
 public:
  // worker_count == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  // Enqueue a task; the returned future rethrows any task exception.
  std::future<void> submit(std::function<void()> task);

  // Runs fn(i) for i in [0, count), blocking until all complete.
  // Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace cfgx
