// Adapter exposing the paper's CFGExplainer (src/core) through the common
// Explainer interface used by the comparison harness.
#pragma once

#include <memory>
#include <optional>

#include "core/explainer_model.hpp"
#include "core/interpreter.hpp"
#include "core/trainer.hpp"
#include "explain/explainer_api.hpp"
#include "gnn/classifier.hpp"

namespace cfgx {

class CfgExplainer : public Explainer {
 public:
  // `gnn` is borrowed and must outlive the explainer.
  CfgExplainer(const GnnClassifier& gnn, ExplainerTrainConfig train_config = {},
               InterpretationConfig interpret_config = {.keep_adjacency_snapshots = false},
               std::uint64_t init_seed = 99);

  std::string name() const override { return "CFGExplainer"; }

  // Runs Algorithm 1 (joint training of Theta_s + Theta_c).
  void fit(const Corpus& corpus,
           const std::vector<std::size_t>& train_indices) override;

  // Runs Algorithm 2 and returns the importance ordering.
  NodeRanking explain(const Acfg& graph) override;

  bool fitted() const noexcept { return fitted_; }
  ExplainerModel& model() { return model_; }
  const ExplainerTrainResult& train_result() const { return train_result_; }

  // Checkpointing of the trained Theta (bench artifact cache).
  void save_model_file(const std::string& path) const { model_.save_file(path); }
  void load_model_file(const std::string& path);  // marks the explainer fitted

  // In-memory counterpart of load_model_file: adopts an already-trained
  // Theta and marks the explainer fitted. The serving engine's per-worker
  // explainer factories clone one trained model this way instead of
  // re-reading a checkpoint per worker. Validates dims against the GNN.
  void set_model(ExplainerModel model);

  // Full Algorithm-2 output (subgraph node sets / adjacencies) for callers
  // that need more than the ranking (Table V qualitative analysis).
  Interpretation interpret(const Acfg& graph) const;

 private:
  const GnnClassifier* gnn_;
  ExplainerModel model_;
  ExplainerTrainConfig train_config_;
  InterpretationConfig interpret_config_;
  ExplainerTrainResult train_result_;
  bool fitted_ = false;
};

}  // namespace cfgx
