#include "explain/pgexplainer.hpp"

#include <cmath>

#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace cfgx {
namespace {

double stable_sigmoid(double x) {
  return x >= 0.0 ? 1.0 / (1.0 + std::exp(-x)) : std::exp(x) / (1.0 + std::exp(x));
}

}  // namespace

PgExplainer::PgExplainer(const GnnClassifier& gnn, PgExplainerConfig config)
    : gnn_(gnn.clone()), config_(config), rng_(config.seed) {
  // clone() drops the non-owned kernel pool; re-attach it so the CSR-backed
  // forward/backward in the mask-training loop stays parallel.
  gnn_.set_kernel_pool(gnn.kernel_pool());
  const std::size_t in_dim = 2 * gnn_.config().embedding_dim();
  predictor_.emplace<Dense>(in_dim, config_.hidden_dim, rng_, "pg.h0");
  predictor_.emplace<Relu>();
  predictor_.emplace<Dense>(config_.hidden_dim, std::size_t{1}, rng_, "pg.out");
}

Matrix PgExplainer::edge_inputs(const Acfg& graph,
                                const Matrix& embeddings) const {
  const std::size_t f = embeddings.cols();
  Matrix inputs(graph.num_edges(), 2 * f);
  const auto& edges = graph.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    for (std::size_t c = 0; c < f; ++c) {
      inputs(e, c) = embeddings(edges[e].src, c);
      inputs(e, f + c) = embeddings(edges[e].dst, c);
    }
  }
  return inputs;
}

void PgExplainer::fit(const Corpus& corpus,
                      const std::vector<std::size_t>& train_indices) {
  obs::TraceSpan fit_span("pgexplainer.fit", "explain");
  Adam optimizer(predictor_.parameters(),
                 AdamConfig{.learning_rate = config_.learning_rate});

  // Frozen-GNN precomputation: embeddings, adjacency, edge inputs, target.
  struct Prepared {
    Matrix adjacency;
    Matrix edge_in;
    const Acfg* graph;
    std::size_t target;
  };
  std::vector<Prepared> prepared;
  prepared.reserve(train_indices.size());
  for (std::size_t index : train_indices) {
    const Acfg& graph = corpus.graph(index);
    if (graph.num_edges() == 0) continue;
    Prepared p;
    p.adjacency = graph.dense_adjacency();
    const Matrix z = gnn_.embed(p.adjacency, graph.features());
    p.edge_in = edge_inputs(graph, z);
    p.graph = &graph;
    p.target = argmax_rows(gnn_.class_logits(z))[0];
    prepared.push_back(std::move(p));
  }

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const double t = config_.epochs <= 1
                         ? 1.0
                         : static_cast<double>(epoch) /
                               static_cast<double>(config_.epochs - 1);
    const double temperature =
        config_.temperature_start +
        t * (config_.temperature_end - config_.temperature_start);

    double epoch_loss = 0.0;
    for (Prepared& p : prepared) {
      const std::size_t num_edges = p.graph->num_edges();
      const auto& edges = p.graph->edges();

      predictor_.zero_grad();
      const Matrix omega = predictor_.forward(p.edge_in);  // [E, 1]

      // Concrete / Gumbel-sigmoid gates.
      std::vector<double> gate(num_edges), dgate_domega(num_edges);
      Matrix masked = p.adjacency;
      for (std::size_t e = 0; e < num_edges; ++e) {
        const double u = rng_.uniform(1e-6, 1.0 - 1e-6);
        const double noise = std::log(u) - std::log(1.0 - u);
        const double pre = (omega(e, 0) + noise) / temperature;
        gate[e] = stable_sigmoid(pre);
        dgate_domega[e] = gate[e] * (1.0 - gate[e]) / temperature;
        masked(edges[e].src, edges[e].dst) = edges[e].weight() * gate[e];
      }

      gnn_.zero_grad();
      const Matrix logits = gnn_.forward_cached(masked, p.graph->features());
      const LossResult loss = softmax_cross_entropy(logits, {p.target});
      epoch_loss += loss.value;
      const auto backward =
          gnn_.backward_cached(loss.grad, /*want_adjacency_grad=*/true);

      Matrix grad_omega(num_edges, 1);
      for (std::size_t e = 0; e < num_edges; ++e) {
        double grad = backward.grad_adjacency(edges[e].src, edges[e].dst) *
                      edges[e].weight() * dgate_domega[e];
        grad += config_.size_weight * dgate_domega[e];
        const double g = gate[e];
        const double eps = 1e-12;
        grad += config_.entropy_weight * dgate_domega[e] *
                (std::log(1.0 - g + eps) - std::log(g + eps));
        grad_omega(e, 0) = grad;
      }
      predictor_.backward(grad_omega);
      optimizer.step();
    }
    CFGX_LOG(Debug) << "pgexplainer epoch " << epoch << " loss "
                    << epoch_loss / static_cast<double>(prepared.size());
  }
  fitted_ = true;
}

void PgExplainer::save_file(const std::string& path) const {
  auto& self = const_cast<PgExplainer&>(*this);
  save_parameters_file(path, self.predictor_.parameters());
}

void PgExplainer::load_file(const std::string& path) {
  load_parameters_file(path, predictor_.parameters());
  fitted_ = true;
}

std::vector<double> PgExplainer::edge_scores(const Acfg& graph) {
  const Matrix z = gnn_.embed(graph.dense_adjacency(), graph.features());
  if (graph.num_edges() == 0) return {};
  const Matrix omega = predictor_.forward(edge_inputs(graph, z));
  std::vector<double> scores(graph.num_edges());
  for (std::size_t e = 0; e < scores.size(); ++e) {
    scores[e] = stable_sigmoid(omega(e, 0));
  }
  return scores;
}

NodeRanking PgExplainer::explain(const Acfg& graph) {
  if (!fitted_) {
    throw std::logic_error("PgExplainer::explain: call fit() first");
  }
  if (graph.num_edges() == 0) {
    NodeRanking ranking;
    ranking.order.resize(graph.num_nodes());
    for (std::uint32_t i = 0; i < graph.num_nodes(); ++i) ranking.order[i] = i;
    return ranking;
  }
  return ranking_from_scores(
      node_scores_from_edge_scores(graph, edge_scores(graph)));
}

}  // namespace cfgx
