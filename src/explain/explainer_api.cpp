#include "explain/explainer_api.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/ops.hpp"

namespace cfgx {

std::vector<std::uint32_t> NodeRanking::top_fraction(double fraction) const {
  const std::size_t k =
      nodes_for_fraction(static_cast<std::uint32_t>(order.size()), fraction);
  return {order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k)};
}

NodeRanking ranking_from_scores(const std::vector<double>& scores) {
  NodeRanking ranking;
  ranking.order = top_k_nodes(scores, scores.size());
  return ranking;
}

std::vector<double> node_scores_from_edge_scores(
    const Acfg& graph, const std::vector<double>& edge_scores) {
  if (edge_scores.size() != graph.num_edges()) {
    throw std::invalid_argument(
        "node_scores_from_edge_scores: edge score arity mismatch");
  }
  std::vector<double> node_scores(graph.num_nodes(),
                                  -std::numeric_limits<double>::infinity());
  const auto& edges = graph.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    node_scores[edges[e].src] = std::max(node_scores[edges[e].src], edge_scores[e]);
    node_scores[edges[e].dst] = std::max(node_scores[edges[e].dst], edge_scores[e]);
  }
  return node_scores;
}

}  // namespace cfgx
