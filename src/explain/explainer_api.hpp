// Common interface for all graph explainers compared in the paper's
// evaluation (Section V-B): CFGExplainer, GNNExplainer, SubgraphX,
// PGExplainer, plus trivial ablation baselines.
//
// An explanation is a total importance ordering of the graph's nodes
// (most important first). Equisized subgraphs — the unit of comparison in
// Figure 2 / Table III — are prefixes of that ordering. Explainers whose
// native output is an edge mask (GNNExplainer, PGExplainer) convert edge
// scores to node scores via the maximum incident edge score (DESIGN.md
// decision 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/corpus.hpp"
#include "graph/acfg.hpp"

namespace cfgx {

struct NodeRanking {
  // Every node of the graph exactly once, most important first.
  std::vector<std::uint32_t> order;

  // The top ceil(fraction * N) nodes.
  std::vector<std::uint32_t> top_fraction(double fraction) const;
};

class Explainer {
 public:
  virtual ~Explainer() = default;

  virtual std::string name() const = 0;

  // Offline training phase (CFGExplainer, PGExplainer). Local-search
  // explainers (GNNExplainer, SubgraphX) keep the no-op default.
  virtual void fit(const Corpus& corpus,
                   const std::vector<std::size_t>& train_indices) {
    (void)corpus;
    (void)train_indices;
  }

  // Produces the node importance ranking for one graph.
  virtual NodeRanking explain(const Acfg& graph) = 0;
};

// Helper shared by score-based explainers: ranking by descending score,
// ties broken by lower node index.
NodeRanking ranking_from_scores(const std::vector<double>& scores);

// Edge-score -> node-score conversion: node score = max over incident
// (either direction) edge scores; isolated nodes score -infinity.
std::vector<double> node_scores_from_edge_scores(
    const Acfg& graph, const std::vector<double>& edge_scores);

}  // namespace cfgx
