// SubgraphX baseline (Yuan et al., ICML 2021), as described in the paper's
// Section II-C: Monte-Carlo Tree Search over node-pruned subgraphs with
// Shapley-value rewards computed against the pre-trained GNN.
//
// Faithful-at-scale adaptation (documented in DESIGN.md): each MCTS action
// prunes a *chunk* of ~prune_fraction*N nodes (the original prunes one node
// per action, which is intractable at CFG sizes), rewards are Monte-Carlo
// Shapley estimates — E_S[ P(c* | S u G_s) - P(c* | S) ] over random
// coalitions S of the pruned complement — and the final node ordering is
// the best-reward pruning path (chunks removed earliest are least
// important) with the terminal survivors ranked by drop-one marginal
// contribution. Like the original, every explanation is a local search:
// no offline phase, many GNN evaluations, slowest of the four (Table IV).
#pragma once

#include <cstdint>

#include "explain/explainer_api.hpp"
#include "gnn/classifier.hpp"

namespace cfgx {

struct SubgraphXConfig {
  std::size_t mcts_iterations = 30;
  std::size_t expand_children = 4;   // candidate pruning actions per state
  double prune_fraction = 0.1;       // nodes removed per action
  double min_fraction = 0.1;         // terminal subgraph size
  std::size_t shapley_samples = 4;   // coalitions per reward estimate
  double ucb_c = 1.4;
  std::uint64_t seed = 61;
};

class SubgraphX : public Explainer {
 public:
  SubgraphX(const GnnClassifier& gnn, SubgraphXConfig config = {});

  std::string name() const override { return "SubgraphX"; }

  NodeRanking explain(const Acfg& graph) override;

  // Number of GNN forward evaluations spent on the last explain() call
  // (complexity accounting for the Table IV bench).
  std::size_t last_gnn_evaluations() const { return gnn_evaluations_; }

 private:
  const GnnClassifier* gnn_;
  SubgraphXConfig config_;
  std::size_t gnn_evaluations_ = 0;
};

}  // namespace cfgx
