#include "explain/evaluate.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

#include "gnn/metrics.hpp"
#include "graph/ops.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cfgx {

double FamilyCurve::accuracy_at(double fraction) const {
  if (fractions.empty()) {
    throw std::logic_error(
        "FamilyCurve::accuracy_at: curve has no grid points");
  }
  if (fractions.size() != accuracies.size()) {
    throw std::logic_error(
        "FamilyCurve::accuracy_at: fractions/accuracies misaligned");
  }
  if (!(fraction >= 0.0 && fraction <= 1.0)) {  // rejects NaN too
    throw std::invalid_argument(
        "FamilyCurve::accuracy_at: fraction outside [0, 1]");
  }
  std::size_t best = 0;
  double best_dist = 1e300;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const double dist = std::abs(fractions[i] - fraction);
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return accuracies[best];
}

double ExplainerEvaluation::average_accuracy_at(double fraction) const {
  if (per_family.empty()) return 0.0;
  double total = 0.0;
  for (const FamilyCurve& curve : per_family) {
    total += curve.accuracy_at(fraction);
  }
  return total / static_cast<double>(per_family.size());
}

double ExplainerEvaluation::fidelity_minus(double fraction) const {
  return average_accuracy_at(1.0) - average_accuracy_at(fraction);
}

ExplainerEvaluation evaluate_explainer(
    Explainer& explainer, const GnnClassifier& gnn, const Corpus& corpus,
    const std::vector<std::size_t>& eval_indices,
    const EvaluationConfig& config) {
  const unsigned step = config.step_size_percent;
  if (step == 0 || step > 100 || 100 % step != 0) {
    throw std::invalid_argument("evaluate_explainer: bad step size");
  }
  if (eval_indices.empty()) {
    throw std::invalid_argument("evaluate_explainer: empty evaluation set");
  }

  const std::size_t grid = 100 / step;
  std::vector<double> fractions(grid);
  for (std::size_t g = 0; g < grid; ++g) {
    fractions[g] = static_cast<double>((g + 1) * step) / 100.0;
  }

  struct Tally {
    std::vector<std::size_t> correct;
    std::size_t samples = 0;
  };
  std::map<int, Tally> per_label;

  std::size_t plant_hits = 0;       // planted nodes inside top-20%
  std::size_t plant_total = 0;      // planted nodes overall
  std::size_t top20_total = 0;      // top-20% nodes over malware samples
  std::size_t complement_correct = 0;  // fidelity+ tally
  double sparsity_sum = 0.0;

  ExplainerEvaluation result;
  result.explainer_name = explainer.name();

  // Per-explainer latency histogram ("explain.CFGExplainer.seconds", ...)
  // feeding the p50/p95/p99 columns in bench run manifests. The span name
  // lives as long as the evaluation, so TraceSpan may keep the pointer.
  obs::Histogram& explain_seconds = obs::MetricsRegistry::global().histogram(
      "explain." + explainer.name() + ".seconds");
  const std::string span_name = "explain." + explainer.name();

  for (std::size_t index : eval_indices) {
    const Acfg& graph = corpus.graph(index);

    Stopwatch watch;
    NodeRanking ranking;
    {
      obs::TraceSpan span(span_name.c_str(), "explain");
      ranking = explainer.explain(graph);
    }
    const double seconds = watch.elapsed_seconds();
    result.explain_time.add(seconds);
    explain_seconds.record(seconds);

    if (ranking.order.size() != graph.num_nodes()) {
      throw std::logic_error("evaluate_explainer: ranking size mismatch from " +
                             explainer.name());
    }

    Tally& tally = per_label[graph.label()];
    if (tally.correct.empty()) tally.correct.assign(grid, 0);
    ++tally.samples;

    // masked_subgraph + the sparse predict() path is bit-identical to
    // keep_only + predict_masked (ops.hpp) without ever densifying —
    // essential once graphs reach the paper's 7352 nodes.
    for (std::size_t g = 0; g < grid; ++g) {
      const auto kept = ranking.top_fraction(fractions[g]);
      const Prediction prediction = gnn.predict(masked_subgraph(graph, kept));
      if (static_cast<int>(prediction.predicted_class) == graph.label()) {
        ++tally.correct[g];
      }
    }

    // Fidelity+ / sparsity at the 20% operating point.
    {
      const auto top20 = ranking.top_fraction(0.2);
      sparsity_sum += 1.0 - static_cast<double>(top20.size()) /
                                static_cast<double>(graph.num_nodes());
      if (config.measure_fidelity_plus) {
        // Complement: every node EXCEPT the top-20%.
        std::vector<char> in_top(graph.num_nodes(), 0);
        for (std::uint32_t v : top20) in_top[v] = 1;
        std::vector<std::uint32_t> complement;
        complement.reserve(graph.num_nodes() - top20.size());
        for (std::uint32_t v = 0; v < graph.num_nodes(); ++v) {
          if (!in_top[v]) complement.push_back(v);
        }
        const Prediction prediction =
            gnn.predict(masked_subgraph(graph, complement));
        if (static_cast<int>(prediction.predicted_class) == graph.label()) {
          ++complement_correct;
        }
      }
    }

    // Plant recovery over the top-20% subgraph of malware samples.
    if (!graph.planted_nodes().empty()) {
      const auto top20 = ranking.top_fraction(0.2);
      std::vector<char> in_top(graph.num_nodes(), 0);
      for (std::uint32_t v : top20) in_top[v] = 1;
      for (std::uint32_t planted : graph.planted_nodes()) {
        if (in_top[planted]) ++plant_hits;
      }
      plant_total += graph.planted_nodes().size();
      top20_total += top20.size();
    }
  }

  double auc_sum = 0.0;
  for (const auto& [label, tally] : per_label) {
    FamilyCurve curve;
    curve.family = family_from_label(label);
    curve.fractions = fractions;
    curve.sample_count = tally.samples;
    curve.accuracies.resize(grid);
    for (std::size_t g = 0; g < grid; ++g) {
      curve.accuracies[g] = static_cast<double>(tally.correct[g]) /
                            static_cast<double>(tally.samples);
    }
    curve.auc = curve_auc(curve.fractions, curve.accuracies);
    auc_sum += curve.auc;
    result.per_family.push_back(std::move(curve));
  }
  result.average_auc = auc_sum / static_cast<double>(result.per_family.size());

  result.plant_recall =
      plant_total == 0 ? 0.0
                       : static_cast<double>(plant_hits) /
                             static_cast<double>(plant_total);
  result.plant_precision =
      top20_total == 0 ? 0.0
                       : static_cast<double>(plant_hits) /
                             static_cast<double>(top20_total);
  result.sparsity_at_20 =
      sparsity_sum / static_cast<double>(eval_indices.size());
  if (config.measure_fidelity_plus) {
    result.complement_accuracy_at_20 =
        static_cast<double>(complement_correct) /
        static_cast<double>(eval_indices.size());
  }
  return result;
}

double full_graph_accuracy(const GnnClassifier& gnn, const Corpus& corpus,
                           const std::vector<std::size_t>& eval_indices) {
  if (eval_indices.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t index : eval_indices) {
    const Acfg& graph = corpus.graph(index);
    if (static_cast<int>(gnn.predict(graph).predicted_class) == graph.label()) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(eval_indices.size());
}

}  // namespace cfgx
