// Trivial baselines for the ablation benches: a seeded random ordering and
// a degree-based ordering (are learned scores better than "keep the hubs"?).
#pragma once

#include <cstdint>

#include "explain/explainer_api.hpp"

namespace cfgx {

class RandomExplainer : public Explainer {
 public:
  explicit RandomExplainer(std::uint64_t seed = 17) : seed_(seed) {}

  std::string name() const override { return "Random"; }
  NodeRanking explain(const Acfg& graph) override;

 private:
  std::uint64_t seed_;
};

// Ranks nodes by total (in + out) degree, descending.
class DegreeExplainer : public Explainer {
 public:
  std::string name() const override { return "Degree"; }
  NodeRanking explain(const Acfg& graph) override;
};

}  // namespace cfgx
