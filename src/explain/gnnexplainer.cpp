#include "explain/gnnexplainer.hpp"

#include <cmath>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "obs/trace.hpp"

namespace cfgx {
namespace {

double stable_sigmoid(double x) {
  return x >= 0.0 ? 1.0 / (1.0 + std::exp(-x)) : std::exp(x) / (1.0 + std::exp(x));
}

// d/dm of the size + entropy regularizers on gate g = sigmoid(m).
double regularizer_grad(double g, double size_weight, double entropy_weight) {
  const double dgate = g * (1.0 - g);
  const double eps = 1e-12;
  return size_weight * dgate +
         entropy_weight * dgate * (std::log(1.0 - g + eps) - std::log(g + eps));
}

}  // namespace

GnnExplainer::GnnExplainer(const GnnClassifier& gnn, GnnExplainerConfig config)
    : gnn_(gnn.clone()), config_(config) {
  // clone() round-trips through serialization and drops the (non-owned)
  // kernel pool; keep the source model's so the per-iteration CSR
  // forward/backward stays parallel.
  gnn_.set_kernel_pool(gnn.kernel_pool());
}

NodeRanking GnnExplainer::explain(const Acfg& graph) {
  const std::size_t num_edges = graph.num_edges();
  const std::size_t num_features = graph.feature_count();
  const Matrix base_adjacency = graph.dense_adjacency();
  const Matrix& base_features = graph.features();

  // The class the mask must preserve: the GNN's own full-graph prediction.
  const std::size_t target_class =
      gnn_.predict_masked(base_adjacency, base_features).predicted_class;

  if (num_edges == 0) {
    // Nothing to mask; fall back to index order.
    last_edge_scores_.clear();
    last_feature_scores_.clear();
    NodeRanking ranking;
    ranking.order.resize(graph.num_nodes());
    for (std::uint32_t i = 0; i < graph.num_nodes(); ++i) ranking.order[i] = i;
    return ranking;
  }

  // Per-edge mask logits (and optionally per-feature gate logits) as
  // Parameters so Adam drives them directly.
  Rng rng(config_.seed ^ (graph.num_nodes() * 0x9e3779b97f4a7c15ULL));
  Parameter mask("edge_mask", Matrix(1, num_edges));
  for (std::size_t e = 0; e < num_edges; ++e) {
    mask.value(0, e) = rng.normal(config_.mask_init_mean, config_.mask_init_stddev);
  }
  Parameter feature_mask("feature_mask", Matrix(1, num_features));
  for (std::size_t f = 0; f < num_features; ++f) {
    feature_mask.value(0, f) =
        rng.normal(config_.mask_init_mean, config_.mask_init_stddev);
  }

  std::vector<Parameter*> params{&mask};
  if (config_.learn_feature_mask) params.push_back(&feature_mask);
  Adam optimizer(params, AdamConfig{.learning_rate = config_.learning_rate});

  // Scaler stddev for the raw->scaled feature gradient chain.
  std::vector<double> inv_std(num_features, 1.0);
  if (gnn_.scaler().fitted()) {
    for (std::size_t f = 0; f < num_features; ++f) {
      inv_std[f] = 1.0 / gnn_.scaler().stddev()[f];
    }
  }

  const auto& edges = graph.edges();
  obs::TraceSpan optimize_span("gnnexplainer.mask_optimize", "explain");
  for (std::size_t step = 0; step < config_.iterations; ++step) {
    // Masked adjacency: A_e *= sigmoid(m_e).
    Matrix masked = base_adjacency;
    std::vector<double> gate(num_edges);
    for (std::size_t e = 0; e < num_edges; ++e) {
      gate[e] = stable_sigmoid(mask.value(0, e));
      masked(edges[e].src, edges[e].dst) = edges[e].weight() * gate[e];
    }

    // Masked features: X[:, f] *= sigmoid(fm_f) when enabled.
    Matrix features = base_features;
    std::vector<double> feature_gate(num_features, 1.0);
    if (config_.learn_feature_mask) {
      for (std::size_t f = 0; f < num_features; ++f) {
        feature_gate[f] = stable_sigmoid(feature_mask.value(0, f));
      }
      for (std::size_t r = 0; r < features.rows(); ++r) {
        for (std::size_t f = 0; f < num_features; ++f) {
          features(r, f) *= feature_gate[f];
        }
      }
    }

    gnn_.zero_grad();
    const Matrix logits = gnn_.forward_cached(masked, features);
    const LossResult loss = softmax_cross_entropy(logits, {target_class});
    const auto backward =
        gnn_.backward_cached(loss.grad, /*want_adjacency_grad=*/true);

    mask.zero_grad();
    for (std::size_t e = 0; e < num_edges; ++e) {
      const double g = gate[e];
      // Prediction term: dL/dA_uv * w_uv * sigma'(m).
      double grad = backward.grad_adjacency(edges[e].src, edges[e].dst) *
                    edges[e].weight() * g * (1.0 - g);
      grad += regularizer_grad(g, config_.size_weight, config_.entropy_weight);
      mask.grad(0, e) = grad;
    }

    if (config_.learn_feature_mask) {
      feature_mask.zero_grad();
      for (std::size_t f = 0; f < num_features; ++f) {
        const double g = feature_gate[f];
        // dL/d(fm_f) = sum_j dL/dX_scaled[j,f] * (X_raw[j,f] / std_f) * g'.
        double grad = 0.0;
        for (std::size_t r = 0; r < base_features.rows(); ++r) {
          grad += backward.grad_scaled_features(r, f) * inv_std[f] *
                  base_features(r, f);
        }
        grad *= g * (1.0 - g);
        grad += regularizer_grad(g, config_.feature_size_weight,
                                 config_.entropy_weight);
        feature_mask.grad(0, f) = grad;
      }
    }
    optimizer.step();
  }

  last_edge_scores_.resize(num_edges);
  for (std::size_t e = 0; e < num_edges; ++e) {
    last_edge_scores_[e] = stable_sigmoid(mask.value(0, e));
  }
  last_feature_scores_.clear();
  if (config_.learn_feature_mask) {
    last_feature_scores_.resize(num_features);
    for (std::size_t f = 0; f < num_features; ++f) {
      last_feature_scores_[f] = stable_sigmoid(feature_mask.value(0, f));
    }
  }
  return ranking_from_scores(
      node_scores_from_edge_scores(graph, last_edge_scores_));
}

}  // namespace cfgx
