// Evaluation harness reproducing the paper's quantitative protocol
// (Section V-B):
//
//   * per-family accuracy-vs-subgraph-size curves at step-size granularity
//     (Figure 2 (a)-(l))
//   * top-10% / top-20% subgraph accuracy and curve AUC (Table III)
//   * per-explanation wall-clock statistics (Table IV)
//
// plus two metrics the paper lists as future work or that our synthetic
// ground truth enables:
//
//   * fidelity- (accuracy drop when keeping only the explanation) and
//     sparsity, following Yuan et al.'s survey definitions
//   * plant recovery: precision/recall of the generator's planted
//     malicious nodes within the top-20% subgraph.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/corpus.hpp"
#include "explain/explainer_api.hpp"
#include "gnn/classifier.hpp"
#include "util/timer.hpp"

namespace cfgx {

struct EvaluationConfig {
  unsigned step_size_percent = 10;
  // Also measure fidelity+ at 20%: the accuracy of the COMPLEMENT graph
  // (top-20% nodes removed). A good explanation removes the decisive
  // evidence, so lower complement accuracy = better explanation. One extra
  // masked prediction per graph.
  bool measure_fidelity_plus = true;
};

struct FamilyCurve {
  Family family = Family::Benign;
  std::vector<double> fractions;   // 0.1, 0.2, ..., 1.0
  std::vector<double> accuracies;  // aligned with fractions
  double auc = 0.0;
  std::size_t sample_count = 0;

  // Accuracy at the nearest grid point. Throws std::logic_error on an
  // empty/misaligned curve and std::invalid_argument when `fraction` is
  // outside [0, 1] (including NaN) — a silent nearest-point answer for a
  // nonsensical request hides caller bugs.
  double accuracy_at(double fraction) const;
};

struct ExplainerEvaluation {
  std::string explainer_name;
  std::vector<FamilyCurve> per_family;  // one entry per family present
  DurationStats explain_time;           // per-graph wall clock

  // Unweighted means over families (the paper's "Average" row).
  double average_auc = 0.0;
  double average_accuracy_at(double fraction) const;

  // Fidelity-: accuracy(full graph) - accuracy(top-`fraction` subgraph),
  // averaged over families.
  double fidelity_minus(double fraction) const;

  // Plant recovery of the top-20% subgraphs over all malware samples
  // (benign graphs have no plants and are excluded).
  double plant_precision = 0.0;
  double plant_recall = 0.0;

  // Fidelity+ at 20% (Yuan et al.'s survey definition): accuracy(full) -
  // accuracy(graph with the top-20% nodes REMOVED). Higher is better — the
  // explanation carried the decisive evidence. NaN-free: 0 when disabled.
  double complement_accuracy_at_20 = 0.0;
  double fidelity_plus(double full_accuracy) const {
    return full_accuracy - complement_accuracy_at_20;
  }

  // Sparsity of the top-20% explanations: 1 - |kept| / |nodes|, averaged
  // over graphs (with a 10% step this is ~0.8 by construction; reported
  // for completeness with the survey metrics).
  double sparsity_at_20 = 0.0;
};

// Explains every graph in `eval_indices` and measures subgraph accuracy at
// every step-size grid point. Rankings are computed once per graph; masked
// predictions reuse the frozen GNN.
ExplainerEvaluation evaluate_explainer(Explainer& explainer,
                                       const GnnClassifier& gnn,
                                       const Corpus& corpus,
                                       const std::vector<std::size_t>& eval_indices,
                                       const EvaluationConfig& config = {});

// Accuracy of `gnn` on the *full* graphs of `eval_indices` (the 100% point
// and the fidelity baseline).
double full_graph_accuracy(const GnnClassifier& gnn, const Corpus& corpus,
                           const std::vector<std::size_t>& eval_indices);

}  // namespace cfgx
