#include "explain/subgraphx.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "graph/ops.hpp"
#include "obs/trace.hpp"

namespace cfgx {
namespace {

using NodeSet = std::vector<std::uint32_t>;  // kept sorted

// Search-tree node: a subgraph state plus MCTS statistics.
struct TreeNode {
  NodeSet remaining;
  std::size_t visits = 0;
  double total_reward = 0.0;
  bool fully_expanded = false;
  // (chunk removed, child index) pairs.
  std::vector<std::pair<NodeSet, std::size_t>> children;

  double mean_reward() const {
    return visits == 0 ? 0.0 : total_reward / static_cast<double>(visits);
  }
};

class Search {
 public:
  Search(const GnnClassifier& gnn, const Acfg& graph,
         const SubgraphXConfig& config)
      : gnn_(gnn),
        graph_(graph),
        config_(config),
        adjacency_(graph.dense_adjacency()),
        rng_(config.seed ^
             (graph.num_nodes() * 0x9e3779b97f4a7c15ULL) ^
             graph.num_edges()) {
    // Target class: the GNN's prediction on the full graph.
    target_class_ = gnn_.predict_masked(adjacency_, graph_.features())
                        .predicted_class;
    ++evaluations_;

    const auto n = graph.num_nodes();
    min_size_ = std::max<std::size_t>(1, nodes_for_fraction(n, config.min_fraction));
    chunk_size_ =
        std::max<std::size_t>(1, nodes_for_fraction(n, config.prune_fraction));

    NodeSet all(n);
    for (std::uint32_t i = 0; i < n; ++i) all[i] = i;
    TreeNode root;
    root.remaining = std::move(all);
    nodes_.push_back(std::move(root));
  }

  std::size_t evaluations() const { return evaluations_; }

  NodeRanking run() {
    for (std::size_t it = 0; it < config_.mcts_iterations; ++it) simulate();
    return extract_ranking();
  }

 private:
  bool terminal(const TreeNode& node) const {
    return node.remaining.size() <= min_size_;
  }

  // P(target | keep set) via the frozen GNN.
  double value_of(const NodeSet& kept) {
    ++evaluations_;
    const MaskedGraph masked = keep_only(adjacency_, graph_.features(), kept);
    return gnn_.predict_masked(masked.adjacency, masked.features)
        .probabilities(0, target_class_);
  }

  // Monte-Carlo Shapley reward of a subgraph: marginal contribution of the
  // kept set over random coalitions of the pruned complement.
  double shapley_reward(const NodeSet& kept) {
    NodeSet complement;
    complement.reserve(graph_.num_nodes() - kept.size());
    std::size_t k = 0;
    for (std::uint32_t v = 0; v < graph_.num_nodes(); ++v) {
      if (k < kept.size() && kept[k] == v) {
        ++k;
      } else {
        complement.push_back(v);
      }
    }

    double reward = 0.0;
    for (std::size_t t = 0; t < config_.shapley_samples; ++t) {
      NodeSet coalition;
      for (std::uint32_t v : complement) {
        if (rng_.bernoulli(0.5)) coalition.push_back(v);
      }
      NodeSet with = coalition;
      with.insert(with.end(), kept.begin(), kept.end());
      std::sort(with.begin(), with.end());
      const double v_with = value_of(with);
      const double v_without = coalition.empty() ? 0.0 : value_of(coalition);
      reward += v_with - v_without;
    }
    return reward / static_cast<double>(config_.shapley_samples);
  }

  // Removes a random chunk from `remaining` and returns (chunk, rest).
  std::pair<NodeSet, NodeSet> random_prune(const NodeSet& remaining) {
    const std::size_t take =
        std::min(chunk_size_, remaining.size() - min_size_);
    const auto picks = rng_.sample_indices(remaining.size(), take);
    std::vector<char> removed(remaining.size(), 0);
    for (std::size_t p : picks) removed[p] = 1;
    NodeSet chunk, rest;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      (removed[i] ? chunk : rest).push_back(remaining[i]);
    }
    return {std::move(chunk), std::move(rest)};
  }

  void simulate() {
    // --- selection ---
    std::vector<std::size_t> path{0};
    while (true) {
      TreeNode& node = nodes_[path.back()];
      if (terminal(node)) break;
      if (node.children.size() < config_.expand_children) {
        // --- expansion ---
        auto [chunk, rest] = random_prune(node.remaining);
        TreeNode child_node;
        child_node.remaining = std::move(rest);
        nodes_.push_back(std::move(child_node));
        const std::size_t child = nodes_.size() - 1;
        nodes_[path.back()].children.emplace_back(std::move(chunk), child);
        path.push_back(child);
        break;
      }
      // UCB over existing children.
      std::size_t best = 0;
      double best_ucb = -1e300;
      for (std::size_t c = 0; c < node.children.size(); ++c) {
        const TreeNode& child = nodes_[node.children[c].second];
        const double explore =
            config_.ucb_c *
            std::sqrt(std::log(static_cast<double>(node.visits) + 1.0) /
                      (static_cast<double>(child.visits) + 1e-9));
        const double ucb = child.mean_reward() + explore;
        if (ucb > best_ucb) {
          best_ucb = ucb;
          best = c;
        }
      }
      path.push_back(node.children[best].second);
    }

    // --- rollout to terminal size ---
    NodeSet state = nodes_[path.back()].remaining;
    while (state.size() > min_size_) {
      state = random_prune(state).second;
    }
    const double reward = shapley_reward(state);

    // --- backpropagation ---
    for (std::size_t idx : path) {
      ++nodes_[idx].visits;
      nodes_[idx].total_reward += reward;
    }
  }

  NodeRanking extract_ranking() {
    // Best-reward path from the root; chunks removed earliest are least
    // important.
    std::vector<NodeSet> removed_chunks;
    std::size_t current = 0;
    while (!terminal(nodes_[current]) && !nodes_[current].children.empty()) {
      const auto& children = nodes_[current].children;
      std::size_t best = 0;
      double best_reward = -1e300;
      for (std::size_t c = 0; c < children.size(); ++c) {
        const double reward = nodes_[children[c].second].mean_reward();
        if (reward > best_reward) {
          best_reward = reward;
          best = c;
        }
      }
      removed_chunks.push_back(children[best].first);
      current = children[best].second;
    }
    // Complete un-searched depth with random pruning.
    NodeSet survivors = nodes_[current].remaining;
    while (survivors.size() > min_size_) {
      auto [chunk, rest] = random_prune(survivors);
      removed_chunks.push_back(std::move(chunk));
      survivors = std::move(rest);
    }

    // Rank survivors by drop-one marginal contribution.
    const double full_value = value_of(survivors);
    std::vector<double> marginal(survivors.size());
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      NodeSet without = survivors;
      without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
      marginal[i] = full_value - (without.empty() ? 0.0 : value_of(without));
    }
    std::vector<std::size_t> order(survivors.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return marginal[a] > marginal[b];
    });

    NodeRanking ranking;
    ranking.order.reserve(graph_.num_nodes());
    for (std::size_t i : order) ranking.order.push_back(survivors[i]);
    for (auto chunk = removed_chunks.rbegin(); chunk != removed_chunks.rend();
         ++chunk) {
      for (std::uint32_t v : *chunk) ranking.order.push_back(v);
    }
    return ranking;
  }

  const GnnClassifier& gnn_;
  const Acfg& graph_;
  const SubgraphXConfig& config_;
  Matrix adjacency_;
  Rng rng_;
  std::size_t target_class_ = 0;
  std::size_t min_size_ = 1;
  std::size_t chunk_size_ = 1;
  std::vector<TreeNode> nodes_;
  std::size_t evaluations_ = 0;
};

}  // namespace

SubgraphX::SubgraphX(const GnnClassifier& gnn, SubgraphXConfig config)
    : gnn_(&gnn), config_(config) {
  if (config_.prune_fraction <= 0.0 || config_.min_fraction <= 0.0) {
    throw std::invalid_argument("SubgraphX: fractions must be positive");
  }
}

NodeRanking SubgraphX::explain(const Acfg& graph) {
  if (graph.num_nodes() == 0) {
    throw std::invalid_argument("SubgraphX::explain: empty graph");
  }
  Search search(*gnn_, graph, config_);
  obs::TraceSpan mcts_span("subgraphx.mcts", "explain");
  NodeRanking ranking = search.run();
  gnn_evaluations_ = search.evaluations();
  return ranking;
}

}  // namespace cfgx
