// GNNExplainer baseline (Ying et al., NeurIPS 2019), as described in the
// paper's Section II-C: per-graph edge-mask optimization.
//
// For each graph, a free parameter m_e per edge is optimized so that the
// masked graph A .* sigmoid(m) keeps the pre-trained GNN's prediction
// (mutual-information objective realized as cross-entropy against the GNN's
// own full-graph prediction), plus the standard size and entropy
// regularizers. Gradients flow through the GCN to the adjacency entries
// (normalization coefficients held constant — the reference implementation
// trick). No global training: every explanation starts from scratch,
// which is exactly why this baseline is slow (Table IV).
#pragma once

#include <cstdint>

#include "explain/explainer_api.hpp"
#include "gnn/classifier.hpp"
#include "nn/optimizer.hpp"

namespace cfgx {

struct GnnExplainerConfig {
  std::size_t iterations = 120;     // optimization steps per graph
  double learning_rate = 0.05;
  double size_weight = 0.005;       // lambda * sum sigmoid(m)
  double entropy_weight = 0.1;      // lambda * sum H(sigmoid(m))
  double mask_init_mean = 1.0;      // masks start mostly-open
  double mask_init_stddev = 0.1;
  // Ying et al.'s optional second mask: a per-feature gate shared across
  // nodes, optimized jointly with the edge mask. The learned gates expose
  // which Table-I block features the prediction relies on.
  bool learn_feature_mask = false;
  double feature_size_weight = 0.05;
  std::uint64_t seed = 31;
};

class GnnExplainer : public Explainer {
 public:
  // Keeps a private clone of the GNN because mask optimization uses the
  // classifier's cached-gradient path.
  GnnExplainer(const GnnClassifier& gnn, GnnExplainerConfig config = {});

  std::string name() const override { return "GNNExplainer"; }

  NodeRanking explain(const Acfg& graph) override;

  // The optimized per-edge mask probabilities of the last explain() call
  // (aligned with graph.edges()); exposed for tests.
  const std::vector<double>& last_edge_scores() const {
    return last_edge_scores_;
  }

  // Per-feature gate probabilities of the last explain() call; empty when
  // learn_feature_mask is off. Index = Table-I feature index.
  const std::vector<double>& last_feature_scores() const {
    return last_feature_scores_;
  }

 private:
  GnnClassifier gnn_;
  GnnExplainerConfig config_;
  std::vector<double> last_edge_scores_;
  std::vector<double> last_feature_scores_;
};

}  // namespace cfgx
