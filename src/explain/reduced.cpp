#include "explain/reduced.hpp"

#include <stdexcept>
#include <utility>

namespace cfgx {

NodeRanking project_ranking(const NodeRanking& reduced_ranking,
                            const NodeProjection& projection) {
  if (reduced_ranking.order.size() != projection.reduced_nodes()) {
    throw std::invalid_argument(
        "project_ranking: ranking covers " +
        std::to_string(reduced_ranking.order.size()) + " supers, projection " +
        std::to_string(projection.reduced_nodes()));
  }
  NodeRanking out;
  out.order = projection.expand_order(reduced_ranking.order);
  return out;
}

ReducedExplainer::ReducedExplainer(std::unique_ptr<Explainer> inner,
                                   ReduceConfig config)
    : inner_(std::move(inner)), config_(std::move(config)) {
  if (inner_ == nullptr) {
    throw std::invalid_argument("ReducedExplainer: null inner explainer");
  }
}

std::string ReducedExplainer::name() const {
  return inner_->name() + "+coarsen";
}

void ReducedExplainer::fit(const Corpus& corpus,
                           const std::vector<std::size_t>& train_indices) {
  inner_->fit(corpus, train_indices);
}

NodeRanking ReducedExplainer::explain(const Acfg& graph) {
  last_ = reduce_graph(graph, config_);
  has_last_ = true;
  const NodeRanking reduced_ranking = inner_->explain(last_.graph);
  if (reduced_ranking.order.size() != last_.graph.num_nodes()) {
    throw std::logic_error("ReducedExplainer: inner ranking size mismatch");
  }
  return project_ranking(reduced_ranking, last_.projection);
}

const ReducedGraph& ReducedExplainer::last_reduction() const {
  if (!has_last_) {
    throw std::logic_error("ReducedExplainer::last_reduction before explain");
  }
  return last_;
}

}  // namespace cfgx
