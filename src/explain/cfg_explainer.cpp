#include "explain/cfg_explainer.hpp"

#include <stdexcept>

namespace cfgx {
namespace {

ExplainerModelConfig model_config_for(const GnnClassifier& gnn) {
  ExplainerModelConfig config;
  config.embedding_dim = gnn.config().embedding_dim();
  config.num_classes = gnn.config().num_classes;
  return config;
}

}  // namespace

CfgExplainer::CfgExplainer(const GnnClassifier& gnn,
                           ExplainerTrainConfig train_config,
                           InterpretationConfig interpret_config,
                           std::uint64_t init_seed)
    : gnn_(&gnn),
      model_([&] {
        Rng rng(init_seed);
        return ExplainerModel(model_config_for(gnn), rng);
      }()),
      train_config_(std::move(train_config)),
      interpret_config_(interpret_config) {}

void CfgExplainer::fit(const Corpus& corpus,
                       const std::vector<std::size_t>& train_indices) {
  train_result_ = train_explainer(model_, *gnn_, corpus, train_indices,
                                  train_config_);
  fitted_ = true;
}

void CfgExplainer::load_model_file(const std::string& path) {
  set_model(ExplainerModel::load_file(path));
}

void CfgExplainer::set_model(ExplainerModel model) {
  if (model.config().embedding_dim != model_.config().embedding_dim ||
      model.config().num_classes != model_.config().num_classes) {
    throw std::invalid_argument(
        "CfgExplainer::set_model: model does not match the GNN");
  }
  model_ = std::move(model);
  fitted_ = true;
}

NodeRanking CfgExplainer::explain(const Acfg& graph) {
  NodeRanking ranking;
  ranking.order = interpret(graph).ordered_nodes;
  return ranking;
}

Interpretation CfgExplainer::interpret(const Acfg& graph) const {
  if (!fitted_) {
    throw std::logic_error("CfgExplainer::interpret: call fit() first");
  }
  // Interpreter needs a mutable model (layer caches); interpretation does
  // not change weights.
  auto& self = const_cast<CfgExplainer&>(*this);
  Interpreter interpreter(self.model_, *gnn_);
  return interpreter.interpret(graph, interpret_config_);
}

}  // namespace cfgx
