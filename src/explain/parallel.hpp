// Parallel batch explanation.
//
// Per-graph explanation is embarrassingly parallel, but most explainers
// carry per-call mutable state (layer caches, RNGs), so a single instance
// cannot be shared across threads. explain_batch takes a *factory* and
// gives every worker its own explainer instance; results come back in
// input order and are bit-identical to a serial run because each graph's
// computation is seed-isolated.
//
//   ThreadPool pool;
//   auto rankings = explain_batch(
//       graphs, pool, [&] { return std::make_unique<GnnExplainer>(gnn); });
//
// The GNN handed to the factory may carry a kernel pool (even this same
// pool): a reentrant parallel_for from a worker runs inline, so the sparse
// kernels inside each explanation never deadlock the batch.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "explain/explainer_api.hpp"
#include "util/thread_pool.hpp"

namespace cfgx {

using ExplainerFactory = std::function<std::unique_ptr<Explainer>()>;

// Explains every graph; rankings[i] corresponds to graphs[i]. Worker count
// is the pool's; each worker constructs at most one explainer. Exceptions
// from factories or explainers propagate to the caller.
std::vector<NodeRanking> explain_batch(
    const std::vector<const Acfg*>& graphs, ThreadPool& pool,
    const ExplainerFactory& factory);

// Convenience overload over a corpus subset.
std::vector<NodeRanking> explain_batch(
    const Corpus& corpus, const std::vector<std::size_t>& indices,
    ThreadPool& pool, const ExplainerFactory& factory);

}  // namespace cfgx
