// Parallel batch explanation.
//
// Per-graph explanation is embarrassingly parallel, but most explainers
// carry per-call mutable state (layer caches, RNGs), so a single instance
// cannot be shared across threads. explain_batch takes a *factory* and
// gives every worker its own explainer instance; results come back in
// input order and are bit-identical to a serial run because each graph's
// computation is seed-isolated.
//
//   ThreadPool pool;
//   auto rankings = explain_batch(
//       graphs, pool, [&] { return std::make_unique<GnnExplainer>(gnn); });
//
// The GNN handed to the factory may carry a kernel pool (even this same
// pool): a reentrant parallel_for from a worker runs inline, so the sparse
// kernels inside each explanation never deadlock the batch.
//
// Failure isolation (the long-running-process contract): one graph's
// explainer throwing must not cost the rest of the batch their results,
// and must leave the pool reusable. explain_batch_outcomes catches every
// per-graph exception inside the worker chunk — no exception ever crosses
// a pool task boundary, every future parallel_for waits on is drained
// normally, and each graph comes back with either its ranking or its own
// typed error. explain_batch is a thin wrapper that rethrows the first
// (by input order) captured error for callers that want the old all-or-
// nothing contract.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "explain/explainer_api.hpp"
#include "util/thread_pool.hpp"

namespace cfgx {

using ExplainerFactory = std::function<std::unique_ptr<Explainer>()>;

// Per-graph result: exactly one of `ranking` (on success) or `error` (the
// exception the graph's factory/explainer threw) is meaningful.
struct ExplainOutcome {
  NodeRanking ranking;
  std::exception_ptr error;  // null on success

  bool ok() const noexcept { return error == nullptr; }
  // what() of the captured exception ("" on success, a fallback string for
  // non-std::exception throwables).
  std::string error_message() const;
};

// Explains every graph; outcomes[i] corresponds to graphs[i]. Worker count
// is the pool's; each worker constructs at most one explainer. Per-graph
// failures (factory or explainer throwing) are captured in the outcome —
// this function itself only throws on invalid input (a null graph
// pointer).
std::vector<ExplainOutcome> explain_batch_outcomes(
    const std::vector<const Acfg*>& graphs, ThreadPool& pool,
    const ExplainerFactory& factory);

// All-or-nothing wrapper: rankings[i] corresponds to graphs[i]; the first
// captured per-graph error (in input order) is rethrown with its original
// type. Every graph is still attempted first, so the pool is drained and
// reusable even on failure.
std::vector<NodeRanking> explain_batch(
    const std::vector<const Acfg*>& graphs, ThreadPool& pool,
    const ExplainerFactory& factory);

// Convenience overload over a corpus subset.
std::vector<NodeRanking> explain_batch(
    const Corpus& corpus, const std::vector<std::size_t>& indices,
    ThreadPool& pool, const ExplainerFactory& factory);

}  // namespace cfgx
