// Reduce-then-explain adapter: runs any Explainer on the coarsened graph
// (graph/reduce.hpp) and projects the resulting super-block ranking back to
// ORIGINAL basic-block ids, so callers — evaluation, serving, the bench
// sweep — never observe super-block numbering. This is the explain-path
// speedup for paper-scale graphs: the inner explainer's cost scales with
// the reduced node count while the returned ranking still covers every
// original block.
#pragma once

#include <memory>
#include <string>

#include "explain/explainer_api.hpp"
#include "graph/reduce.hpp"

namespace cfgx {

// Expands a super-block ranking to an original-block ranking via
// NodeProjection::expand_order. `reduced_ranking.order` must be a
// permutation of the projection's supers (throws std::invalid_argument on a
// size mismatch).
NodeRanking project_ranking(const NodeRanking& reduced_ranking,
                            const NodeProjection& projection);

class ReducedExplainer : public Explainer {
 public:
  // Takes ownership of the inner explainer. Throws std::invalid_argument on
  // a null inner.
  explicit ReducedExplainer(std::unique_ptr<Explainer> inner,
                            ReduceConfig config = {});

  // "<inner>+coarsen"
  std::string name() const override;

  // Forwards to the inner explainer unchanged: fitting consumes full
  // corpus graphs (any graph is a valid GNN input, reduced or not), and
  // the paper's trained artifacts (theta, PG nets) transfer because the
  // coarse graph keeps the Table-I feature distribution (see the merge
  // semantics in graph/reduce.hpp).
  void fit(const Corpus& corpus,
           const std::vector<std::size_t>& train_indices) override;

  // reduce -> inner explain on the coarse graph -> expand to original ids.
  NodeRanking explain(const Acfg& graph) override;

  // The reduction produced by the most recent explain() (for benches /
  // tests reporting reduction ratios). Throws std::logic_error before the
  // first explain().
  const ReducedGraph& last_reduction() const;

 private:
  std::unique_ptr<Explainer> inner_;
  ReduceConfig config_;
  ReducedGraph last_;
  bool has_last_ = false;
};

}  // namespace cfgx
