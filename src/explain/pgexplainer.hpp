// PGExplainer baseline (Luo et al., NeurIPS 2020), as described in the
// paper's Section II-C: a *global* generative mask predictor.
//
// A small MLP maps the concatenated endpoint embeddings [z_u ; z_v] of each
// edge to a mask logit omega_e. During the offline phase the MLP is trained
// across the whole training corpus: edges are gated with a concrete
// (Gumbel-sigmoid) relaxation at annealed temperature, the masked graph is
// pushed through the frozen GNN, and cross-entropy against the GNN's own
// prediction (+ size/entropy regularizers) is minimized. At explanation
// time sigmoid(omega_e) scores edges directly, which is why PGExplainer
// amortizes: one forward pass per graph instead of per-graph optimization.
#pragma once

#include <cstdint>
#include <memory>

#include "explain/explainer_api.hpp"
#include "gnn/classifier.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"

namespace cfgx {

struct PgExplainerConfig {
  std::size_t epochs = 20;          // passes over the training graphs
  double learning_rate = 3e-3;
  // Strong enough to balance the classification gradient at our graph
  // scale; weaker settings let every gate saturate open and the ranking
  // degenerates to node-index order.
  double size_weight = 0.3;
  double entropy_weight = 0.1;
  double temperature_start = 5.0;   // concrete relaxation annealing
  double temperature_end = 1.0;
  std::size_t hidden_dim = 32;      // MLP: [2f] -> hidden -> 1
  std::uint64_t seed = 47;
};

class PgExplainer : public Explainer {
 public:
  PgExplainer(const GnnClassifier& gnn, PgExplainerConfig config = {});

  std::string name() const override { return "PGExplainer"; }

  // Offline training of the mask predictor over the training corpus.
  void fit(const Corpus& corpus,
           const std::vector<std::size_t>& train_indices) override;

  NodeRanking explain(const Acfg& graph) override;

  bool fitted() const noexcept { return fitted_; }

  // Checkpointing of the trained mask predictor (bench artifact cache).
  void save_file(const std::string& path) const;
  void load_file(const std::string& path);  // marks the explainer fitted

  // Deterministic edge scores sigmoid(omega_e) for a graph (test support).
  std::vector<double> edge_scores(const Acfg& graph);

 private:
  // [E, 2f] matrix of concatenated endpoint embeddings.
  Matrix edge_inputs(const Acfg& graph, const Matrix& embeddings) const;

  GnnClassifier gnn_;
  PgExplainerConfig config_;
  Sequential predictor_;
  Rng rng_;
  bool fitted_ = false;
};

}  // namespace cfgx
