#include "explain/baselines.hpp"

#include "util/rng.hpp"

namespace cfgx {

NodeRanking RandomExplainer::explain(const Acfg& graph) {
  NodeRanking ranking;
  ranking.order.resize(graph.num_nodes());
  for (std::uint32_t i = 0; i < graph.num_nodes(); ++i) ranking.order[i] = i;
  // Seed varies per graph so different samples get different orders but the
  // whole evaluation stays reproducible.
  Rng rng(seed_ ^ (graph.num_nodes() * 0x9e3779b97f4a7c15ULL) ^
          graph.num_edges());
  rng.shuffle(ranking.order);
  return ranking;
}

NodeRanking DegreeExplainer::explain(const Acfg& graph) {
  const auto out = graph.out_degrees();
  const auto in = graph.in_degrees();
  std::vector<double> scores(graph.num_nodes());
  for (std::uint32_t i = 0; i < graph.num_nodes(); ++i) {
    scores[i] = static_cast<double>(out[i]) + static_cast<double>(in[i]);
  }
  return ranking_from_scores(scores);
}

}  // namespace cfgx
