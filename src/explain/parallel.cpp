#include "explain/parallel.hpp"

#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <thread>

namespace cfgx {

std::vector<NodeRanking> explain_batch(const std::vector<const Acfg*>& graphs,
                                       ThreadPool& pool,
                                       const ExplainerFactory& factory) {
  for (const Acfg* graph : graphs) {
    if (graph == nullptr) {
      throw std::invalid_argument("explain_batch: null graph pointer");
    }
  }

  std::vector<NodeRanking> rankings(graphs.size());

  // One lazily-created explainer per worker thread.
  std::mutex registry_mutex;
  std::unordered_map<std::thread::id, std::unique_ptr<Explainer>> registry;
  const auto explainer_for_this_thread = [&]() -> Explainer& {
    const auto id = std::this_thread::get_id();
    {
      std::lock_guard lock(registry_mutex);
      const auto it = registry.find(id);
      if (it != registry.end()) return *it->second;
    }
    std::unique_ptr<Explainer> fresh = factory();
    if (!fresh) {
      throw std::logic_error("explain_batch: factory returned null");
    }
    std::lock_guard lock(registry_mutex);
    return *registry.emplace(id, std::move(fresh)).first->second;
  };

  pool.parallel_for(graphs.size(), [&](std::size_t i) {
    rankings[i] = explainer_for_this_thread().explain(*graphs[i]);
  });
  return rankings;
}

std::vector<NodeRanking> explain_batch(const Corpus& corpus,
                                       const std::vector<std::size_t>& indices,
                                       ThreadPool& pool,
                                       const ExplainerFactory& factory) {
  std::vector<const Acfg*> graphs;
  graphs.reserve(indices.size());
  for (std::size_t index : indices) graphs.push_back(&corpus.graph(index));
  return explain_batch(graphs, pool, factory);
}

}  // namespace cfgx
