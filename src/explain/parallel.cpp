#include "explain/parallel.hpp"

#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

namespace cfgx {

std::string ExplainOutcome::error_message() const {
  if (error == nullptr) return "";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

std::vector<ExplainOutcome> explain_batch_outcomes(
    const std::vector<const Acfg*>& graphs, ThreadPool& pool,
    const ExplainerFactory& factory) {
  for (const Acfg* graph : graphs) {
    if (graph == nullptr) {
      throw std::invalid_argument("explain_batch: null graph pointer");
    }
  }

  std::vector<ExplainOutcome> outcomes(graphs.size());

  // One lazily-created explainer per worker thread. A throwing factory is
  // retried on the worker's next graph (its failure is recorded per graph,
  // not cached), which also covers transient construction failures.
  std::mutex registry_mutex;
  std::unordered_map<std::thread::id, std::unique_ptr<Explainer>> registry;
  const auto explainer_for_this_thread = [&]() -> Explainer& {
    const auto id = std::this_thread::get_id();
    {
      std::lock_guard lock(registry_mutex);
      const auto it = registry.find(id);
      if (it != registry.end()) return *it->second;
    }
    std::unique_ptr<Explainer> fresh = factory();
    if (!fresh) {
      throw std::logic_error("explain_batch: factory returned null");
    }
    std::lock_guard lock(registry_mutex);
    return *registry.emplace(id, std::move(fresh)).first->second;
  };

  // The catch INSIDE the task body is the failure-isolation point: no
  // exception crosses the packaged_task boundary, so parallel_for drains
  // every future normally and the pool stays reusable afterwards.
  pool.parallel_for(graphs.size(), [&](std::size_t i) {
    try {
      outcomes[i].ranking = explainer_for_this_thread().explain(*graphs[i]);
    } catch (...) {
      outcomes[i].error = std::current_exception();
    }
  });
  return outcomes;
}

std::vector<NodeRanking> explain_batch(const std::vector<const Acfg*>& graphs,
                                       ThreadPool& pool,
                                       const ExplainerFactory& factory) {
  std::vector<ExplainOutcome> outcomes =
      explain_batch_outcomes(graphs, pool, factory);
  for (const ExplainOutcome& outcome : outcomes) {
    if (!outcome.ok()) std::rethrow_exception(outcome.error);
  }
  std::vector<NodeRanking> rankings(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    rankings[i] = std::move(outcomes[i].ranking);
  }
  return rankings;
}

std::vector<NodeRanking> explain_batch(const Corpus& corpus,
                                       const std::vector<std::size_t>& indices,
                                       ThreadPool& pool,
                                       const ExplainerFactory& factory) {
  std::vector<const Acfg*> graphs;
  graphs.reserve(indices.size());
  for (std::size_t index : indices) graphs.push_back(&corpus.graph(index));
  return explain_batch(graphs, pool, factory);
}

}  // namespace cfgx
